// Operator registry: the embedding interface.
//
// An operator is an encapsulated sequential sub-computation (C/Fortran in
// the paper; any C++ callable here) with a unique entry and exit point.
// The only extra coding requirement the model imposes (§2.1) is that an
// operator state explicitly whether it might destructively modify each of
// its arguments — the runtime uses these annotations to enforce
// determinism through reference counting and copy-on-write.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/template.h"
#include "src/runtime/fault.h"
#include "src/runtime/value.h"
#include "src/sema/operator_table.h"

namespace delirium {

class OpContext;
struct OperatorDef;

using OperatorFn = std::function<Value(OpContext&)>;

struct OperatorDef {
  OperatorInfo info;  // name, arity, variadic, pure, folder, destructive
  OperatorFn fn;

  bool is_destructive(size_t arg) const { return info.is_destructive(arg); }
};

/// Handed to an operator on invocation: argument access (with CoW for
/// declared-destructive block arguments) and execution context.
class OpContext {
 public:
  /// `input_classes` carries the sole-consumer analysis verdict for each
  /// argument (empty span = everything kUnknown; the default preserves
  /// runtime-checked CoW behavior for embedders calling operators
  /// directly).
  OpContext(const OperatorDef& def, std::span<Value> args, int worker,
            std::span<const ConsumeClass> input_classes = {})
      : def_(def), args_(args), worker_(worker), input_classes_(input_classes) {}

  size_t arg_count() const { return args_.size(); }
  const Value& arg(size_t i) const { return checked(i); }
  /// Move an argument out (cheap; use for pass-through results).
  Value take(size_t i) { return std::move(checked(i)); }

  int64_t arg_int(size_t i) const { return checked(i).as_int(); }
  double arg_float(size_t i) const { return checked(i).as_float(); }
  const std::string& arg_string(size_t i) const { return checked(i).as_string(); }

  template <typename T>
  const T& arg_block(size_t i) const {
    return checked(i).block_as<T>();
  }

  /// Mutable block access. Requires that the operator declared
  /// destructive access to argument `i`; performs copy-on-write when the
  /// block is shared.
  template <typename T>
  T& arg_block_mut(size_t i) {
    if (!def_.is_destructive(i)) {
      throw RuntimeError("operator '" + def_.info.name + "' did not declare destructive access to argument " +
                         std::to_string(i));
    }
    if (i < input_classes_.size() && input_classes_[i] == ConsumeClass::kUnique) {
      // Statically proved sole consumer: mutate in place without the
      // uniqueness test. A refcount > 1 here means the analysis saved a
      // clone the runtime would otherwise have paid for.
      bool was_shared = false;
      T& data = checked(i).block_mut_inplace<T>(&was_shared);
      if (was_shared) ++cow_skipped_;
      return data;
    }
    bool copied = false;
    T& data = checked(i).block_mut<T>(&copied);
    if (copied) ++cow_copies_;
    return data;
  }

  /// Worker executing this operator (0-based); useful for diagnostics.
  int worker_id() const { return worker_; }

  /// Number of copy-on-write block copies triggered by this invocation.
  uint64_t cow_copies() const { return cow_copies_; }

  /// Number of clones skipped thanks to a kUnique static classification
  /// (the block was shared, but provably only by never-readers).
  uint64_t cow_skipped() const { return cow_skipped_; }

 private:
  Value& checked(size_t i) const {
    if (i >= args_.size()) {
      throw RuntimeError("operator '" + def_.info.name + "': argument index " +
                         std::to_string(i) + " out of range");
    }
    return args_[i];
  }

  const OperatorDef& def_;
  std::span<Value> args_;
  int worker_;
  std::span<const ConsumeClass> input_classes_;
  uint64_t cow_copies_ = 0;
  uint64_t cow_skipped_ = 0;
};

/// The operator registry: the compile-time OperatorTable and the runtime
/// dispatch table in one. Operators are registered with a fluent builder:
///
///   registry.add("convolve", 2, fn).pure();
///   registry.add("post_up", 5, fn).destructive(0);
class OperatorRegistry final : public OperatorTable {
 public:
  class Entry {
   public:
    explicit Entry(OperatorDef* def) : def_(def) {}
    Entry& pure() {
      if (def_->info.any_destructive()) {
        throw std::invalid_argument("operator '" + def_->info.name +
                                    "' cannot be both pure and destructive");
      }
      def_->info.pure = true;
      return *this;
    }
    Entry& fold(ConstFolder folder) {
      def_->info.fold = std::move(folder);
      return *this;
    }
    Entry& destructive(size_t arg) {
      if (def_->info.pure) {
        throw std::invalid_argument("operator '" + def_->info.name +
                                    "' cannot be both pure and destructive");
      }
      auto& flags = def_->info.destructive;
      if (flags.size() <= arg) flags.resize(arg + 1, false);
      flags[arg] = true;
      return *this;
    }
    Entry& variadic() {
      def_->info.variadic = true;
      return *this;
    }

   private:
    OperatorDef* def_;
  };

  /// Register an operator. Throws std::invalid_argument on duplicates.
  Entry add(std::string name, int arity, OperatorFn fn);

  size_t size() const { return defs_.size(); }
  const OperatorDef& at(size_t index) const { return *defs_[index]; }

  /// Attach a fault-injection plan (delc --inject-faults). Executors
  /// constructed against this registry pick the plan up; when none is
  /// set they fall back to the DELIRIUM_INJECT_FAULTS environment
  /// variable. Pass nullptr to clear.
  void set_fault_plan(std::shared_ptr<const FaultPlan> plan) { fault_plan_ = std::move(plan); }
  const std::shared_ptr<const FaultPlan>& fault_plan() const { return fault_plan_; }

  // OperatorTable:
  const OperatorInfo* lookup(const std::string& name) const override;
  int index_of(const std::string& name) const override;

 private:
  std::vector<std::unique_ptr<OperatorDef>> defs_;
  std::unordered_map<std::string, int> by_name_;
  std::shared_ptr<const FaultPlan> fault_plan_;
};

/// Register the built-in convenience operators (arithmetic, comparison,
/// logic, string, conversion, print). All pure except print. The paper's
/// examples use names like incr / is_equal / is_not_equal; these are
/// provided here so coordination frameworks need no boilerplate.
void register_builtin_operators(OperatorRegistry& registry);

}  // namespace delirium
