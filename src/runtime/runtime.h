// The Delirium runtime system (§7 of the paper).
//
// Executes coordination graphs by *template activation*: each function
// call instantiates a small record with buffer space for one evaluation
// of the function's template. A three-level priority ready queue (normal
// operators > non-recursive call-closures > recursive call-closures)
// keeps the number of live activations low; tail calls forward their
// continuation so loops run in constant activation space.
//
// Results are deterministic regardless of the number of workers: all
// shared memory is passed explicitly, and a block is destructively
// modified only through its sole reference (copy-on-write otherwise).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/graph/template.h"
#include "src/runtime/fault.h"
#include "src/runtime/registry.h"
#include "src/runtime/tracing.h"
#include "src/runtime/value.h"
#include "src/support/clock.h"
#include "src/support/eventcount.h"
#include "src/support/mpsc_queue.h"
#include "src/support/work_steal_deque.h"

namespace delirium {

/// Locality heuristics from §9.3. kOperator prefers the worker that last
/// ran the operator; kData prefers the home worker of the largest input
/// block. Neither affects computed values.
enum class AffinityMode { kNone, kOperator, kData };

/// Ready-queue implementation. kGlobalLock is the original single-mutex
/// scheduler (kept for A/B ablation; see bench_scheduler); kWorkStealing
/// gives each worker three lock-free Chase–Lev deques (one per §7
/// priority level) plus an MPSC injection queue, with idle workers
/// parked on per-worker eventcounts. Computed values are identical under
/// both — only the schedule changes.
enum class SchedulerKind { kGlobalLock, kWorkStealing };

struct RuntimeConfig {
  /// Worker threads ("processors"). 0 means hardware concurrency.
  int num_workers = 0;
  /// Record per-node execution times (the case studies' "node timings").
  bool enable_node_timing = false;
  /// Use the three-level priority queue of §7; false degrades to a single
  /// FIFO (the ablation measured by bench_priority).
  bool use_priorities = true;
  /// Forward continuations on tail calls (§7's early activation reuse);
  /// false nests every call — the ablation shows loops then consume
  /// activations proportional to their iteration count.
  bool enable_tail_calls = true;
  AffinityMode affinity = AffinityMode::kNone;
  /// Simulated NUMA: cost, in nanoseconds per KiB, of an operator touching
  /// a block whose home is another worker (models the BBN Butterfly's
  /// expensive remote references). 0 disables the model.
  int64_t remote_penalty_ns_per_kb = 0;
  /// Honor kUnique consume-class annotations from the sole-consumer
  /// analysis: mutate such arguments in place without the uniqueness
  /// test or clone. Kill switch for A/B runs and debugging.
  bool unique_fastpath = true;
  /// Ready-queue implementation; overridable via the DELIRIUM_SCHEDULER
  /// environment variable ("global_lock" / "work_stealing").
  SchedulerKind scheduler = SchedulerKind::kWorkStealing;
  /// Automatic retries of a faulting retry-eligible operator: pure
  /// operators, and destructive operators whose every destructive
  /// argument the sole-consumer analysis proved kUnique (a pre-image
  /// snapshot then makes the retry exact). 0 disables retry.
  /// Overridable via the DELIRIUM_RETRIES environment variable.
  int max_retries = 0;
  /// Base delay before a retry, doubled per attempt. Wall-clock here;
  /// SimRuntime applies the same policy in virtual time.
  int64_t retry_backoff_ns = 1000;
  /// Watchdog: whole-run wall-clock budget in milliseconds; 0 disables.
  /// A fired watchdog cancels the run and reports which operators were
  /// executing and which activations were stranded waiting for inputs.
  int64_t watchdog_budget_ms = 0;
  /// Cancel the run on the first captured fault instead of draining.
  /// Fails faster, but the reported fault may then depend on the
  /// schedule (see docs/ROBUSTNESS.md for the determinism contract).
  bool fail_fast = false;
  /// Record the trace event stream (operator begin/end, scheduler and
  /// fault events) into per-worker ring buffers; read it back with
  /// trace_events() and export with tools::write_trace_events. Off by
  /// default — the disabled path costs one predictable branch per hook
  /// (bench_trace_overhead). Overridable via the DELIRIUM_TRACE
  /// environment variable ("0"/"1"); see docs/OBSERVABILITY.md.
  bool enable_tracing = false;
  /// Per-worker trace ring capacity in events (rounded up to a power of
  /// two). When a ring fills, the oldest events are overwritten and
  /// counted in trace_events_overwritten(). Overridable via
  /// DELIRIUM_TRACE_CAPACITY.
  size_t trace_capacity = kDefaultTraceCapacity;
};

/// One operator execution, for the node-timing report.
struct NodeTiming {
  std::string label;     // operator name
  std::string tmpl;      // template it ran in
  Ticks duration = 0;    // nanoseconds
  int worker = 0;
  uint64_t seq = 0;      // global completion order
  /// When the operator started: wall-clock ns relative to the run start
  /// (Runtime) or exact virtual ns (SimRuntime). Lets trace export place
  /// slices with true gaps instead of packing durations end-to-end.
  Ticks start = 0;
};

struct RunStats {
  uint64_t activations_created = 0;
  uint64_t peak_live_activations = 0;
  uint64_t nodes_executed = 0;
  uint64_t operator_invocations = 0;
  uint64_t cow_copies = 0;          // blocks copied to preserve determinism
  uint64_t cow_skipped = 0;         // clones elided via kUnique annotations
  uint64_t remote_block_moves = 0;  // NUMA-simulated block migrations
  Ticks operator_ticks = 0;         // total time inside operators

  // Scheduler counters. The global-lock scheduler fills only the enqueue
  // split (every enqueue is "local": one shared queue); SimRuntime
  // reports every virtual enqueue as local and the rest as zero, so
  // tooling sees one schema across all three executors.
  uint64_t sched_local_enqueues = 0;     // pushed to the enqueuer's own deque
  uint64_t sched_injected_enqueues = 0;  // crossed workers via an MPSC inbox
  uint64_t sched_steals = 0;             // items taken from a victim's deque
  uint64_t sched_failed_steals = 0;      // full victim scans that found nothing
  uint64_t sched_parks = 0;              // times a worker slept on its eventcount
  uint64_t sched_wakeups = 0;            // notifications sent to parked workers

  // Fault counters (docs/ROBUSTNESS.md), mirrored by SimRuntime so the
  // two executors report recovery behavior through one schema.
  uint64_t faults_raised = 0;      // faults captured and surfaced at drain
  uint64_t faults_injected = 0;    // injection-plan actions that fired
  uint64_t retries = 0;            // operator attempts re-run after a fault
  uint64_t retries_exhausted = 0;  // operators whose retry budget ran out
  uint64_t items_purged = 0;       // queued items discarded by cancellation
  uint64_t watchdog_fires = 0;     // stall-detector activations
};

class Runtime {
 public:
  explicit Runtime(const OperatorRegistry& registry, RuntimeConfig config = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute the program's entry point. Throws RuntimeError (or whatever
  /// an operator threw) on failure. One run at a time per Runtime; the
  /// worker pool persists across runs.
  Value run(const CompiledProgram& program, std::vector<Value> args = {});

  /// Execute a specific global function.
  Value run_function(const CompiledProgram& program, const std::string& name,
                     std::vector<Value> args = {});

  const RunStats& last_stats() const { return stats_; }

  /// Node timings of the last run (empty unless enable_node_timing), in
  /// completion order.
  const std::vector<NodeTiming>& node_timings() const { return merged_timings_; }
  /// Print in the paper's format: "call of <op> took <ticks>".
  void print_node_timings(std::ostream& os) const;

  /// Trace event stream of the last run (empty unless enable_tracing),
  /// merged across workers and sorted by sequence number. Timestamps are
  /// wall-clock nanoseconds relative to the run start.
  const std::vector<TraceEvent>& trace_events() const { return merged_trace_; }
  /// Events lost to ring-buffer wraparound during the last run.
  uint64_t trace_events_overwritten() const { return trace_overwritten_; }

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const RuntimeConfig& config() const { return config_; }
  const OperatorRegistry& registry() const { return registry_; }

 private:
  struct Activation;
  struct RunState;
  struct ParMapCollector;
  struct WorkItem {
    std::shared_ptr<Activation> act;
    uint32_t node = 0;
  };
  struct WorkerData {
    std::vector<NodeTiming> timings;
    // What the worker is executing right now, for the watchdog dump.
    // Maintained only when a watchdog budget is set.
    std::mutex busy_mu;
    std::string busy_op;  // empty = idle
    Ticks busy_since = 0;
  };

  /// Live-activation ledger, sharded to keep registration off the hot
  /// path's single lock. Feeds the deadlock diagnostic and the watchdog
  /// dump; an activation's destructor cannot finish while a dump holds
  /// its shard, so the dump may read pending counters safely.
  struct LedgerShard {
    std::mutex mu;
    std::unordered_set<Activation*> acts;
  };
  static constexpr size_t kLedgerShards = 16;

  /// Per-worker state of the work-stealing scheduler: one bounded
  /// Chase–Lev deque and one unbounded MPSC injection queue per priority
  /// level, plus the worker's parking slot. Only the owner pushes/pops
  /// the deques' bottoms and consumes the inboxes; anyone steals from
  /// the deques' tops or pushes to the inboxes.
  struct WsWorker {
    std::array<WorkStealDeque<WorkItem>, 3> deques;
    std::array<MpscQueue<WorkItem>, 3> inbox;
    EventCount ec;
    std::atomic<bool> parked{false};
    uint32_t steal_rr = 0;  // owner-private: rotates the first steal victim
    // Owner-private deferred trace state: parks and dry steal scans
    // happen while the worker holds no work item, outside the window in
    // which ring writes are race-free (see tracing.h). They accumulate
    // here and are flushed at the next successful pop.
    Ticks pending_park_ts = 0;      // start of the first unflushed park
    int64_t pending_park_ns = 0;    // total time slept since last flush
    int64_t pending_steal_fails = 0;
    bool has_pending_park = false;
  };

  void worker_loop(int worker);     // kGlobalLock
  void worker_loop_ws(int worker);  // kWorkStealing
  bool pop_item(int worker, WorkItem& out);  // called with sched_mu_ held
  void ws_enqueue(WorkItem item, int priority, int target);
  bool ws_try_pop(int worker, WorkItem& out);
  bool ws_has_work(int worker) const;
  void ws_wake(int worker);    // notify one specific parked worker
  void ws_wake_any_parked();   // notify some parked worker, if any
  void execute(const WorkItem& item, int worker);
  void execute_node(const WorkItem& item, int worker);

  std::shared_ptr<Activation> spawn(const CompiledProgram& program, const Template* tmpl,
                                    std::vector<Value> params,
                                    std::shared_ptr<Activation> cont_act, uint32_t cont_node,
                                    RunState* run, uint64_t seq,
                                    std::shared_ptr<ParMapCollector> collector = nullptr,
                                    uint32_t collector_index = 0);
  void deliver_final(RunState* rs, Value v);
  void spawn_child(const WorkItem& item, const Template* target, std::vector<Value> params);
  void deliver(const std::shared_ptr<Activation>& act, uint32_t node, Value v);
  void schedule_node(const std::shared_ptr<Activation>& act, uint32_t node);
  void reset_run_accumulators();
  void finish_run_bookkeeping();
  void apply_numa_penalties(std::vector<Value>& args, int worker);

  // Tracing (docs/OBSERVABILITY.md). The disabled path is one branch.
  // `worker` selects the target ring; -1 (a thread outside the pool —
  // only ever the run's caller) uses the extra external ring.
  void trace(int worker, TraceEventKind kind, int32_t op = -1, int64_t arg = 0) {
    if (!trace_enabled_) return;
    trace_at(now_ticks() - run_start_ticks_, worker, kind, op, arg);
  }
  void trace_at(int64_t ts, int worker, TraceEventKind kind, int32_t op, int64_t arg);
  void ws_flush_pending_trace(int worker);

  // Fault handling (docs/ROBUSTNESS.md).
  void record_fault(RunState* rs, FaultInfo f, int32_t op_index = -1);
  void cancel_run(RunState* rs);
  void fire_watchdog(RunState* rs);
  void ledger_add(Activation* act);
  void ledger_remove(Activation* act);
  std::vector<StrandedActivation> collect_stranded(const RunState* rs);
  std::string dump_busy_workers();

  const OperatorRegistry& registry_;
  RuntimeConfig config_;

  // kGlobalLock scheduler state: one mutex guards all queues. Three
  // deques per priority level, globally and per worker (the latter used
  // only under affinity modes).
  std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  std::array<std::deque<WorkItem>, 3> global_queue_;
  std::vector<std::array<std::deque<WorkItem>, 3>> local_queues_;
  size_t queued_total_ = 0;
  std::atomic<bool> stopping_{false};

  // kWorkStealing scheduler state (see docs/RUNTIME.md).
  std::vector<std::unique_ptr<WsWorker>> ws_;
  std::atomic<int> num_parked_{0};
  std::atomic<uint32_t> inject_rr_{0};  // round-robin for external enqueues

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerData>> worker_data_;
  std::vector<std::atomic<int>> op_last_worker_;  // operator-affinity memory
  std::vector<std::atomic<uint64_t>> op_arrivals_;  // per-operator arrival counters
  std::array<LedgerShard, kLedgerShards> ledger_;

  std::mutex run_mu_;  // serializes run() calls
  RunState* current_run_ = nullptr;

  // Tracing state. Rings are sized num_workers + 1; the last ring
  // belongs to the run's caller thread (root spawn, watchdog). The
  // sequence counter is the only shared mutable state on the recording
  // path — one relaxed fetch_add per event.
  bool trace_enabled_ = false;
  Ticks run_start_ticks_ = 0;
  std::vector<TraceRing> trace_rings_;
  std::atomic<uint64_t> trace_seq_{0};
  std::vector<TraceEvent> merged_trace_;
  uint64_t trace_overwritten_ = 0;

  // Statistics (atomic accumulators, snapshotted into stats_ per run).
  std::atomic<uint64_t> activations_created_{0};
  std::atomic<int64_t> live_activations_{0};
  std::atomic<uint64_t> peak_live_activations_{0};
  std::atomic<uint64_t> nodes_executed_{0};
  std::atomic<uint64_t> operator_invocations_{0};
  std::atomic<uint64_t> cow_copies_{0};
  std::atomic<uint64_t> cow_skipped_{0};
  std::atomic<uint64_t> remote_block_moves_{0};
  std::atomic<int64_t> operator_ticks_{0};
  std::atomic<uint64_t> timing_seq_{0};
  std::atomic<uint64_t> sched_local_enqueues_{0};
  std::atomic<uint64_t> sched_injected_enqueues_{0};
  std::atomic<uint64_t> sched_steals_{0};
  std::atomic<uint64_t> sched_failed_steals_{0};
  std::atomic<uint64_t> sched_parks_{0};
  std::atomic<uint64_t> sched_wakeups_{0};
  std::atomic<uint64_t> faults_raised_{0};
  std::atomic<uint64_t> faults_injected_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> retries_exhausted_{0};
  std::atomic<uint64_t> items_purged_{0};
  std::atomic<uint64_t> watchdog_fires_{0};

  RunStats stats_;
  std::vector<NodeTiming> merged_timings_;

  friend struct Activation;
};

}  // namespace delirium
