// The threaded Delirium runtime (§7 of the paper).
//
// All graph semantics — template activation, port fill and firing, the
// copy-on-write discipline, fault capture/retry, trace and stats
// emission — live in the shared ExecutorCore (executor_core.h); this
// header adds the *machine*: a pool of worker threads, the two ready-
// queue implementations (single-mutex global-lock and lock-free
// work-stealing), eventcount parking, the wall-clock watchdog, and
// per-worker trace rings. SimRuntime (sim.h) plugs a virtual-time
// machine into the same core, so results are deterministic and
// byte-identical across both executors regardless of worker count.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/runtime/executor_core.h"
#include "src/support/eventcount.h"
#include "src/support/mpsc_queue.h"
#include "src/support/work_steal_deque.h"

namespace delirium {

class InstanceManager;

/// Ready-queue implementation. kGlobalLock is the original single-mutex
/// scheduler (kept for A/B ablation; see bench_scheduler); kWorkStealing
/// gives each worker three lock-free Chase–Lev deques (one per §7
/// priority level) plus an MPSC injection queue, with idle workers
/// parked on per-worker eventcounts. Computed values are identical under
/// both — only the schedule changes.
enum class SchedulerKind { kGlobalLock, kWorkStealing };

/// Threaded-machine knobs. Everything shared with SimRuntime lives in
/// the ExecConfig base (executor_core.h) so a knob exists in both
/// executors by construction.
struct RuntimeConfig : ExecConfig {
  /// Worker threads ("processors"). 0 means hardware concurrency.
  int num_workers = 0;
  /// Ready-queue implementation; overridable via the DELIRIUM_SCHEDULER
  /// environment variable ("global_lock" / "work_stealing").
  SchedulerKind scheduler = SchedulerKind::kWorkStealing;
  /// Watchdog: whole-run wall-clock budget in milliseconds; 0 disables.
  /// A fired watchdog cancels the run and reports which operators were
  /// executing and which activations were stranded waiting for inputs.
  /// (SimRuntime's watchdog budget is in *virtual* ns — see SimConfig.)
  int64_t watchdog_budget_ms = 0;
};

class Runtime : public ExecutorCore<Runtime> {
 public:
  explicit Runtime(const OperatorRegistry& registry, RuntimeConfig config = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Execute the program's entry point. Throws RuntimeError (or whatever
  /// an operator threw) on failure. One run at a time per Runtime; the
  /// worker pool persists across runs.
  Value run(const CompiledProgram& program, std::vector<Value> args = {});

  /// Execute a specific global function.
  Value run_function(const CompiledProgram& program, const std::string& name,
                     std::vector<Value> args = {});

  const RunStats& last_stats() const { return stats_; }

  /// Node timings of the last run (empty unless enable_node_timing), in
  /// completion order.
  const std::vector<NodeTiming>& node_timings() const { return merged_timings_; }
  /// Print in the paper's format: "call of <op> took <ticks>".
  void print_node_timings(std::ostream& os) const;

  /// Trace event stream of the last run (empty unless enable_tracing),
  /// merged across workers and sorted by sequence number. Timestamps are
  /// wall-clock nanoseconds relative to the run start.
  const std::vector<TraceEvent>& trace_events() const { return merged_trace_; }
  /// Events lost to ring-buffer wraparound during the last run.
  uint64_t trace_events_overwritten() const { return trace_overwritten_; }

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const RuntimeConfig& config() const { return config_; }
  const OperatorRegistry& registry() const { return registry_; }

 private:
  // The core drives the machine hooks below and its nested Activation
  // touches the ledger callbacks, so it (and its nested classes) need
  // access to this private section. The InstanceManager (instance.h)
  // multiplexes many RunStates over this machine's worker pool.
  friend class ExecutorCore<Runtime>;
  friend class InstanceManager;

  /// Per-run state — or per-*instance* state in manager mode, where the
  /// InstanceManager owns one RunState per admitted instance and many of
  /// them share the worker pool at once. Every activation carries a
  /// pointer to its owning RunState as its run token, which is what
  /// scopes cancellation, purging, fault capture, and the stranded dump
  /// to a single instance.
  struct RunState {
    std::mutex mu;
    std::condition_variable cv;
    bool have_result = false;
    Value result;
    /// Faults captured during the run, guarded by mu. At drain the
    /// smallest fault under fault_before() is the one rethrown, so the
    /// reported error is identical across schedulers and worker counts.
    std::vector<FaultInfo> faults;
    /// Set (release) by fail_fast fault capture, the watchdog, or a
    /// tripped instance budget; checked (acquire) before every execution
    /// so queued items are purged instead of run.
    std::atomic<bool> cancelled{false};
    bool watchdog_fired = false;     // caller thread only
    std::string watchdog_message;    // written before cancellation
    /// Queued + executing work items. The run is complete when this
    /// drains to zero: every enqueue increments, every completed
    /// execution decrements, and an executing item performs all of its
    /// enqueues before its own decrement. Manager mode biases this by a
    /// +1 submission token held across the root spawn, so a transient
    /// zero mid-spawn cannot finalize the instance early.
    std::atomic<int64_t> outstanding{0};
    int64_t watchdog_budget_ns = 0;

    // -- Manager-mode fields (defaults in the plain single-run path) --
    /// Non-null routes the drained-to-zero notification to the manager
    /// instead of the cv; the manager finalizes the instance inline on
    /// the draining worker.
    InstanceManager* manager = nullptr;
    uint64_t instance_id = 0;  // 0 = plain single run (no dump annotation)
    std::string program_name;
    uint64_t max_activations = 0;  // 0 = unlimited
    std::atomic<uint64_t> activations{0};
    /// First budget trip wins (exchange); the winner writes
    /// budget_message under mu and cancels the instance.
    std::atomic<bool> budget_tripped{false};
    bool budget_fired = false;    // guarded by mu
    std::string budget_message;   // guarded by mu
    /// Root-spawn failure (unknown function, arity mismatch), guarded by
    /// mu; reported as the instance's error when nothing else fired.
    std::string spawn_error;
    bool finalized = false;       // guarded by mu (manager mode)
    Ticks submit_ticks = 0;
    int64_t time_budget_ns = 0;  // 0 = none (wall ns from submit)
    /// Held until finalize so budget/deadlock dumps can still walk the
    /// stranded activation tree.
    std::shared_ptr<Activation> root;
  };

  struct WorkItem {
    std::shared_ptr<Activation> act;
    uint32_t node = 0;
  };
  struct WorkerData {
    std::vector<NodeTiming> timings;
    // What the worker is executing right now, for the watchdog dump.
    // Maintained only when a watchdog budget is set.
    std::mutex busy_mu;
    std::string busy_op;  // empty = idle
    Ticks busy_since = 0;
  };

  /// Live-activation ledger, sharded to keep registration off the hot
  /// path's single lock. Feeds the deadlock diagnostic and the watchdog
  /// dump; an activation's destructor cannot finish while a dump holds
  /// its shard, so the dump may read pending counters safely.
  struct LedgerShard {
    std::mutex mu;
    std::unordered_set<Activation*> acts;
  };
  static constexpr size_t kLedgerShards = 16;

  /// Per-worker state of the work-stealing scheduler: one bounded
  /// Chase–Lev deque and one unbounded MPSC injection queue per priority
  /// level, plus the worker's parking slot. Only the owner pushes/pops
  /// the deques' bottoms and consumes the inboxes; anyone steals from
  /// the deques' tops or pushes to the inboxes.
  struct WsWorker {
    std::array<WorkStealDeque<WorkItem>, kQueueLevels> deques;
    std::array<MpscQueue<WorkItem>, kQueueLevels> inbox;
    EventCount ec;
    std::atomic<bool> parked{false};
    uint32_t steal_rr = 0;  // owner-private: rotates the first steal victim
    // Owner-private deferred trace state: parks and dry steal scans
    // happen while the worker holds no work item, outside the window in
    // which ring writes are race-free (see tracing.h). They accumulate
    // here and are flushed at the next successful pop.
    Ticks pending_park_ts = 0;      // start of the first unflushed park
    int64_t pending_park_ns = 0;    // total time slept since last flush
    int64_t pending_steal_fails = 0;
    bool has_pending_park = false;
  };

  // -- MachineModel hooks (called by ExecutorCore; see executor_core.h) --
  static constexpr bool kVirtualTime = false;
  Ticks node_base_cost() { return 0; }
  void enqueue_ready(const std::shared_ptr<Activation>& act, uint32_t node, Ticks when);
  void deliver_final(void* run, Value v, Ticks when);
  void trace_from_core(int worker, Ticks ts, TraceEventKind kind, int32_t op, int64_t arg);
  void record_fault_from_core(void* run, FaultInfo f, int32_t op_index, Ticks ts,
                              int worker);
  void charge_remote(int domain_from, int domain_to, int64_t bytes, Ticks penalty_ns,
                     Ticks& cost);
  int pick_worker_in_domain(int domain, int home_worker);
  void charge_stall(Ticks ns, Ticks& cost);
  void charge_backoff(Ticks ns, Ticks& cost);
  void busy_begin(int worker, const OperatorDef& def);
  void busy_end(int worker);
  Ticks op_clock_begin();
  void op_note_success(Ticks t0, const OperatorDef& def, const Activation& act, int worker,
                       Ticks virtual_start, uint64_t arrival, Ticks& cost);
  uint64_t op_arrival(const OperatorDef& def, int op_index, bool has_plan);
  int last_affinity_worker(int op_index);
  void note_affinity(int op_index, int worker);
  void on_activation_created(Activation* act);
  void on_activation_destroyed(Activation* act);

  void worker_loop(int worker);     // kGlobalLock
  void worker_loop_ws(int worker);  // kWorkStealing
  bool pop_item(int worker, WorkItem& out);  // called with sched_mu_ held
  void ws_enqueue(WorkItem item, int priority, int target);
  bool ws_try_pop(int worker, WorkItem& out);
  bool ws_has_work(int worker) const;
  void ws_wake(int worker);    // notify one specific parked worker
  void ws_wake_any_parked();   // notify some parked worker, if any
  void execute(const WorkItem& item, int worker);

  void reset_run_accumulators();
  void finish_run_bookkeeping();

  // Tracing (docs/OBSERVABILITY.md). The disabled path is one branch.
  // `worker` selects the target ring; -1 (a thread outside the pool —
  // only ever the run's caller) uses the extra external ring.
  void trace(int worker, TraceEventKind kind, int32_t op = -1, int64_t arg = 0) {
    if (!trace_enabled_) return;
    trace_at(now_ticks() - run_start_ticks_, worker, kind, op, arg);
  }
  void trace_at(int64_t ts, int worker, TraceEventKind kind, int32_t op, int64_t arg);
  void ws_flush_pending_trace(int worker);

  // Fault handling (docs/ROBUSTNESS.md).
  void record_fault(RunState* rs, FaultInfo f, int32_t op_index = -1);
  void cancel_run(RunState* rs);
  void fire_watchdog(RunState* rs);
  void ledger_add(Activation* act);
  void ledger_remove(Activation* act);
  std::vector<StrandedActivation> collect_stranded(const RunState* rs);
  std::string dump_busy_workers();

  RuntimeConfig config_;

  // kGlobalLock scheduler state: one mutex guards all queues. One deque
  // per ready-queue level (kQueueLevels), globally and per worker (the
  // latter used only under affinity modes).
  std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  std::array<std::deque<WorkItem>, kQueueLevels> global_queue_;
  std::vector<std::array<std::deque<WorkItem>, kQueueLevels>> local_queues_;
  size_t queued_total_ = 0;
  std::atomic<bool> stopping_{false};

  // kWorkStealing scheduler state (see docs/RUNTIME.md).
  std::vector<std::unique_ptr<WsWorker>> ws_;
  std::atomic<int> num_parked_{0};
  std::atomic<uint32_t> inject_rr_{0};  // round-robin for external enqueues

  // Locality (src/support/topology.h): per-domain round-robin cursors
  // for in-domain data-affinity placement. Sized from the effective
  // topology at construction; empty under single-/per-worker-domain
  // topologies, where pick_worker_in_domain is never called.
  std::vector<std::atomic<uint32_t>> domain_rr_;

  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkerData>> worker_data_;
  std::vector<std::atomic<int>> op_last_worker_;  // operator-affinity memory
  std::vector<std::atomic<uint64_t>> op_arrivals_;  // per-operator arrival counters
  std::array<LedgerShard, kLedgerShards> ledger_;

  std::mutex run_mu_;  // serializes run() calls (and whole manager sessions)
  /// Whether busy_begin/busy_end maintain the per-worker busy-op dump.
  /// On only when something could consume it: a run with a watchdog
  /// budget, or a manager session configured to track busy workers.
  std::atomic<bool> busy_tracking_{false};

  // Tracing state. Rings are sized num_workers + 1; the last ring
  // belongs to the run's caller thread (root spawn, watchdog). The
  // sequence counter is the only shared mutable state on the recording
  // path — one relaxed fetch_add per event.
  bool trace_enabled_ = false;
  Ticks run_start_ticks_ = 0;
  std::vector<TraceRing> trace_rings_;
  std::atomic<uint64_t> trace_seq_{0};
  std::vector<TraceEvent> merged_trace_;
  uint64_t trace_overwritten_ = 0;

  /// Global completion order for node timings (the dataflow counters
  /// themselves live in ExecutorCore's StatCounters).
  std::atomic<uint64_t> timing_seq_{0};

  RunStats stats_;
  std::vector<NodeTiming> merged_timings_;
};

}  // namespace delirium
