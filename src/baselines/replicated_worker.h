// Baseline #2: the replicated-worker model (§9.1) — "tasks are generated
// and put on a queue; a group of identical workers reads from the queue,
// executing jobs as they appear and possibly adding more jobs". The
// paper notes (with some irony) that this is how the Delirium runtime
// itself is built, yet it cannot be expressed *within* the model.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace delirium::baselines {

/// A work queue whose tasks may push further tasks. run() returns once
/// the queue drains and all workers are idle.
class ReplicatedWorkerPool {
 public:
  using Task = std::function<void(ReplicatedWorkerPool&)>;

  explicit ReplicatedWorkerPool(int workers) : workers_(workers < 1 ? 1 : workers) {}

  /// Add a task (callable from within tasks).
  void submit(Task task);

  /// Process the queue to exhaustion with `workers` threads.
  void run();

 private:
  int workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  int active_ = 0;
  bool draining_ = false;
};

}  // namespace delirium::baselines
