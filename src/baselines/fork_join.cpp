#include "src/baselines/fork_join.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace delirium::baselines {

void parallel_for(int tasks, int workers, const std::function<void(int)>& fn) {
  if (workers <= 1 || tasks <= 1) {
    for (int t = 0; t < tasks; ++t) fn(t);
    return;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  const int n = std::min(workers, tasks);
  threads.reserve(n);
  for (int w = 0; w < n; ++w) {
    threads.emplace_back([&] {
      for (;;) {
        const int t = next.fetch_add(1, std::memory_order_relaxed);
        if (t >= tasks) return;
        fn(t);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

struct ForkJoinPool::State {
  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  const std::function<void(int)>* fn = nullptr;
  int tasks = 0;
  std::atomic<int> next{0};
  int remaining = 0;       // tasks not yet finished in this phase
  uint64_t generation = 0;  // bumped per fork()
  bool stop = false;
};

ForkJoinPool::ForkJoinPool(int workers) : state_(std::make_unique<State>()) {
  if (workers < 1) workers = 1;
  threads_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ForkJoinPool::~ForkJoinPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->stop = true;
  }
  state_->work_cv.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ForkJoinPool::worker_loop(int) {
  State& s = *state_;
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(s.mu);
      s.work_cv.wait(lock, [&] { return s.stop || s.generation != seen_generation; });
      if (s.stop) return;
      seen_generation = s.generation;
    }
    for (;;) {
      const int t = s.next.fetch_add(1, std::memory_order_relaxed);
      if (t >= s.tasks) break;
      (*s.fn)(t);
      std::lock_guard<std::mutex> lock(s.mu);
      if (--s.remaining == 0) s.done_cv.notify_all();
    }
  }
}

void ForkJoinPool::fork(int tasks, const std::function<void(int)>& fn) {
  if (tasks <= 0) return;
  State& s = *state_;
  std::unique_lock<std::mutex> lock(s.mu);
  s.fn = &fn;
  s.tasks = tasks;
  s.next.store(0, std::memory_order_relaxed);
  s.remaining = tasks;
  ++s.generation;
  s.work_cv.notify_all();
  s.done_cv.wait(lock, [&] { return s.remaining == 0; });
  s.fn = nullptr;
}

}  // namespace delirium::baselines
