// Reference workloads implemented directly on the baseline coordination
// models, for the Table 2 comparison bench: the same computations the
// Delirium apps perform, expressed as a 1990 programmer would have in
// each competing model.
#pragma once

#include <cstdint>

#include "src/apps/retina/retina_model.h"
#include "src/baselines/fork_join.h"

namespace delirium::baselines {

/// Retina model over hand-coded fork-join threads. Bitwise identical to
/// retina::sequential_run.
retina::RetinaModel retina_forkjoin_run(const retina::RetinaParams& params,
                                        ForkJoinPool& pool);

/// N-queens on the replicated-worker model (§9.1): tasks expand partial
/// boards and enqueue children. Returns the solution count.
int64_t queens_replicated_worker(int n, int workers);

/// N-queens on the tuple-space model (§8): work tuples carry encoded
/// partial boards; workers take, expand, and re-insert. Returns the
/// solution count.
int64_t queens_tuple_space(int n, int workers);

}  // namespace delirium::baselines
