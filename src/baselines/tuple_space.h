// Baseline #3: a miniature Linda-style tuple space (§8). Tuples are a
// tag plus a small vector of integer/string fields; `in` blocks until a
// matching tuple exists and removes it, `rd` copies without removing,
// `out` inserts. Matching is associative: any field may be a wildcard.
// Nondeterministic by design (the system returns "a random selection
// from the set of tuples which match") — exactly the property Delirium's
// model trades away for deterministic execution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace delirium::baselines {

using Field = std::variant<int64_t, std::string>;

struct Tuple {
  std::string tag;
  std::vector<Field> fields;
};

/// A match pattern: nullopt fields are wildcards ("formal" parameters in
/// Linda terminology).
struct Pattern {
  std::string tag;
  std::vector<std::optional<Field>> fields;

  bool matches(const Tuple& tuple) const;
};

class TupleSpace {
 public:
  /// Insert a tuple.
  void out(Tuple tuple);

  /// Remove and return a matching tuple, blocking until one exists.
  Tuple in(const Pattern& pattern);

  /// Non-blocking in: returns nullopt when nothing matches.
  std::optional<Tuple> inp(const Pattern& pattern);

  /// Copy a matching tuple without removing it (blocking).
  Tuple rd(const Pattern& pattern);

  size_t size() const;

 private:
  std::optional<Tuple> take_locked(const Pattern& pattern, bool remove);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Bucketed by tag; within a bucket, FIFO order (a deterministic stand-in
  // for Linda's "random selection").
  std::unordered_map<std::string, std::vector<Tuple>> buckets_;
  size_t count_ = 0;
};

}  // namespace delirium::baselines
