#include "src/baselines/baseline_apps.h"

#include <atomic>
#include <thread>

#include "src/apps/queens/queens.h"
#include "src/baselines/replicated_worker.h"
#include "src/baselines/tuple_space.h"

namespace delirium::baselines {

retina::RetinaModel retina_forkjoin_run(const retina::RetinaParams& params,
                                        ForkJoinPool& pool) {
  using namespace retina;
  RetinaModel model = make_model(params);
  const int rows = model.rows_per_quarter();
  for (int t = 0; t < params.num_iter; ++t) {
    // Target phase (sequentially cheap, matching sequential_timestep).
    advance_targets(model.targets, params.width, params.height);
    ++model.timestep;
    model.photo = render_scene(model.targets, params.width, params.height);
    for (int q = 0; q < kQuarters; ++q) {
      std::fill(model.accum[q].begin(), model.accum[q].end(), 0.0f);
    }
    for (int slab = 0; slab < kKernelSize; ++slab) {
      pool.fork(kQuarters, [&](int q) {
        convolve_slab_rows(*model.photo, slab, q * rows, (q + 1) * rows, model.accum[q]);
      });
      if (is_heavy_slab(slab)) {
        pool.fork(kQuarters, [&](int q) {
          heavy_update_rows(*model.photo, slab, q * rows, (q + 1) * rows, params.width,
                            model.accum[q], model.bipolar[q], model.prev_bipolar[q],
                            model.motion[q]);
        });
      }
    }
  }
  return model;
}

int64_t queens_replicated_worker(int n, int workers) {
  using queens::Board;
  std::atomic<int64_t> solutions{0};
  ReplicatedWorkerPool pool(workers);

  // A task expands one partial board; complete boards count, valid
  // prefixes spawn children.
  std::function<void(ReplicatedWorkerPool&, Board)> expand =
      [&](ReplicatedWorkerPool& p, Board board) {
        if (static_cast<int>(board.size()) == n) {
          solutions.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (int8_t row = 1; row <= n; ++row) {
          Board child = board;
          child.push_back(row);
          if (!queens::board_valid(child)) continue;
          p.submit([&expand, child = std::move(child)](ReplicatedWorkerPool& inner) mutable {
            expand(inner, std::move(child));
          });
        }
      };
  pool.submit([&expand](ReplicatedWorkerPool& p) { expand(p, queens::Board{}); });
  pool.run();
  return solutions.load();
}

namespace {

// Board encoding for tuple fields: one digit per column (n <= 16 fits in
// an int64 for n <= 15; boards are short anyway, use a string).
std::string encode_board(const queens::Board& board) {
  std::string s;
  for (int8_t row : board) {
    s.push_back(static_cast<char>('a' + row));
  }
  return s;
}

queens::Board decode_board(const std::string& s) {
  queens::Board board;
  for (char c : s) board.push_back(static_cast<int8_t>(c - 'a'));
  return board;
}

}  // namespace

int64_t queens_tuple_space(int n, int workers) {
  using queens::Board;
  TupleSpace space;
  std::atomic<int64_t> solutions{0};
  std::atomic<int64_t> pending{1};

  space.out(Tuple{"work", {Field{encode_board({})}}});

  auto worker_fn = [&] {
    Pattern work_pattern{"work", {std::nullopt}};
    for (;;) {
      Tuple t = space.in(work_pattern);
      const std::string& payload = std::get<std::string>(t.fields[0]);
      if (payload == "!poison") return;
      Board board = decode_board(payload);
      if (static_cast<int>(board.size()) == n) {
        solutions.fetch_add(1, std::memory_order_relaxed);
      } else {
        for (int8_t row = 1; row <= n; ++row) {
          Board child = board;
          child.push_back(row);
          if (!queens::board_valid(child)) continue;
          pending.fetch_add(1, std::memory_order_acq_rel);
          space.out(Tuple{"work", {Field{encode_board(child)}}});
        }
      }
      if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Queue drained: release everyone.
        for (int w = 0; w < workers; ++w) {
          space.out(Tuple{"work", {Field{std::string("!poison")}}});
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) threads.emplace_back(worker_fn);
  for (std::thread& t : threads) t.join();
  return solutions.load();
}

}  // namespace delirium::baselines
