#include "src/baselines/tuple_space.h"

namespace delirium::baselines {

bool Pattern::matches(const Tuple& tuple) const {
  if (tag != tuple.tag || fields.size() != tuple.fields.size()) return false;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].has_value() && *fields[i] != tuple.fields[i]) return false;
  }
  return true;
}

void TupleSpace::out(Tuple tuple) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    buckets_[tuple.tag].push_back(std::move(tuple));
    ++count_;
  }
  cv_.notify_all();
}

std::optional<Tuple> TupleSpace::take_locked(const Pattern& pattern, bool remove) {
  auto bucket_it = buckets_.find(pattern.tag);
  if (bucket_it == buckets_.end()) return std::nullopt;
  auto& bucket = bucket_it->second;
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (pattern.matches(bucket[i])) {
      Tuple result = bucket[i];
      if (remove) {
        bucket.erase(bucket.begin() + static_cast<long>(i));
        --count_;
      }
      return result;
    }
  }
  return std::nullopt;
}

Tuple TupleSpace::in(const Pattern& pattern) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (auto t = take_locked(pattern, /*remove=*/true)) return std::move(*t);
    cv_.wait(lock);
  }
}

std::optional<Tuple> TupleSpace::inp(const Pattern& pattern) {
  std::lock_guard<std::mutex> lock(mu_);
  return take_locked(pattern, /*remove=*/true);
}

Tuple TupleSpace::rd(const Pattern& pattern) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (auto t = take_locked(pattern, /*remove=*/false)) return std::move(*t);
    cv_.wait(lock);
  }
}

size_t TupleSpace::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

}  // namespace delirium::baselines
