// Baseline #1: hand-coded shared-memory fork-join (the "uniform,
// distributed shared memory" model of §8 — what a Sequent programmer
// would write directly with threads and barriers). Used by bench_models
// to compare against Delirium coordination of the same computation.
#pragma once

#include <functional>
#include <thread>
#include <vector>

namespace delirium::baselines {

/// Run fn(0..tasks-1), distributing tasks over `workers` joined threads.
/// The call returns when every task has finished (a barrier).
void parallel_for(int tasks, int workers, const std::function<void(int)>& fn);

/// A reusable pool variant: threads persist across fork() calls, so the
/// per-phase cost is two condition-variable hops instead of thread
/// creation (CP.41).
class ForkJoinPool {
 public:
  explicit ForkJoinPool(int workers);
  ~ForkJoinPool();
  ForkJoinPool(const ForkJoinPool&) = delete;
  ForkJoinPool& operator=(const ForkJoinPool&) = delete;

  /// Run fn(0..tasks-1) on the pool; returns after all complete.
  void fork(int tasks, const std::function<void(int)>& fn);

  int workers() const { return static_cast<int>(threads_.size()); }

 private:
  struct State;
  void worker_loop(int index);

  std::unique_ptr<State> state_;
  std::vector<std::thread> threads_;
};

}  // namespace delirium::baselines
