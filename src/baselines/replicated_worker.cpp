#include "src/baselines/replicated_worker.h"

namespace delirium::baselines {

void ReplicatedWorkerPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ReplicatedWorkerPool::run() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    active_ = 0;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers_);
  for (int w = 0; w < workers_; ++w) {
    threads.emplace_back([this] {
      for (;;) {
        Task task;
        {
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait(lock, [this] { return !queue_.empty() || active_ == 0; });
          if (queue_.empty()) {
            // Queue empty and nobody working: drained. Wake the others.
            cv_.notify_all();
            return;
          }
          task = std::move(queue_.front());
          queue_.pop_front();
          ++active_;
        }
        task(*this);
        {
          std::lock_guard<std::mutex> lock(mu_);
          --active_;
        }
        cv_.notify_all();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = false;
}

}  // namespace delirium::baselines
