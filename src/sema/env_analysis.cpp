#include "src/sema/env_analysis.h"

#include <vector>

namespace delirium {

namespace {

/// What a name refers to at a use site.
enum class NameKind { kLocalValue, kLocalFunction, kGlobalFunction, kOperator, kUnknown };

class Analyzer {
 public:
  Analyzer(const Program& program, const OperatorTable& operators, DiagnosticEngine& diags)
      : program_(program), operators_(operators), diags_(diags) {}

  AnalysisResult run(const AnalysisOptions& options) {
    // Global function names; duplicates violate the one-definition rule.
    for (const FuncDecl* f : program_.functions) {
      if (!globals_.emplace(f->name, f).second) {
        diags_.error(f->range, "duplicate function definition '" + f->name + "'");
      }
      check_duplicate_names(f->params, f->range, "parameter");
    }
    if (options.require_main) {
      auto it = globals_.find(options.entry_point);
      if (it == globals_.end()) {
        diags_.error({}, "program has no entry point '" + options.entry_point + "'");
      } else if (!it->second->params.empty()) {
        diags_.error(it->second->range,
                     "entry point '" + options.entry_point + "' must take no parameters");
      }
    }
    for (const FuncDecl* f : program_.functions) {
      current_function_ = f->name;
      ScopeGuard params(*this);
      for (const std::string& p : f->params) push_local(p, /*is_function=*/false, 0);
      visit(f->body);
    }
    compute_recursion();
    result_.ok = !diags_.has_errors();
    return std::move(result_);
  }

 private:
  struct Local {
    bool is_function = false;
    int arity = 0;
  };

  /// RAII scope: pops locals pushed since construction. Lookup is via a
  /// per-name shadow stack (O(1)); the linear push log only drives pops.
  class ScopeGuard {
   public:
    explicit ScopeGuard(Analyzer& a) : a_(a), base_(a.push_log_.size()) {}
    ~ScopeGuard() {
      while (a_.push_log_.size() > base_) {
        auto it = a_.locals_.find(a_.push_log_.back());
        it->second.pop_back();
        if (it->second.empty()) a_.locals_.erase(it);
        a_.push_log_.pop_back();
      }
    }

   private:
    Analyzer& a_;
    size_t base_;
  };

  void push_local(const std::string& name, bool is_function, int arity) {
    locals_[name].push_back(Local{is_function, arity});
    push_log_.push_back(name);
  }

  const Local* find_local(const std::string& name) const {
    auto it = locals_.find(name);
    return it == locals_.end() || it->second.empty() ? nullptr : &it->second.back();
  }

  void check_duplicate_names(const std::vector<std::string>& names, SourceRange range,
                             const char* what) {
    for (size_t i = 0; i < names.size(); ++i) {
      for (size_t j = i + 1; j < names.size(); ++j) {
        if (names[i] == names[j]) {
          diags_.error(range, std::string("duplicate ") + what + " name '" + names[i] +
                                  "' violates single assignment");
        }
      }
    }
  }

  /// Resolve a name at a use site, recording call-graph / operator info.
  NameKind resolve(const Expr* use) {
    const std::string& name = use->str_value;
    if (const Local* local = find_local(name)) {
      return local->is_function ? NameKind::kLocalFunction : NameKind::kLocalValue;
    }
    if (globals_.count(name) > 0) {
      result_.callgraph[current_function_].insert(name);
      return NameKind::kGlobalFunction;
    }
    if (operators_.lookup(name) != nullptr) {
      ++result_.operator_uses[name];
      return NameKind::kOperator;
    }
    diags_.error(use->range, "unknown name '" + name + "'");
    return NameKind::kUnknown;
  }

  void check_call_arity(const Expr* apply, const std::string& name, size_t expected,
                        bool variadic) {
    if (variadic) return;
    if (apply->args.size() != expected) {
      diags_.error(apply->range, "'" + name + "' expects " + std::to_string(expected) +
                                     " argument(s), got " + std::to_string(apply->args.size()));
    }
  }

  void visit(const Expr* e) {
    if (e == nullptr) return;
    switch (e->kind) {
      case ExprKind::kIntLit:
      case ExprKind::kFloatLit:
      case ExprKind::kStringLit:
      case ExprKind::kNullLit:
        return;
      case ExprKind::kVar: {
        NameKind kind = resolve(e);
        if (kind == NameKind::kOperator) {
          diags_.error(e->range, "operator '" + e->str_value +
                                     "' cannot be used as a value; wrap it in a function");
        }
        return;
      }
      case ExprKind::kTuple:
        for (const Expr* a : e->args) visit(a);
        return;
      case ExprKind::kApply: {
        for (const Expr* a : e->args) visit(a);
        if (e->callee != nullptr && e->callee->kind == ExprKind::kVar) {
          const std::string& name = e->callee->str_value;
          // `parmap(f, package)` is a built-in special form (the §9.2
          // dynamic-parallelism extension), unless the name is shadowed.
          if (name == "parmap" && find_local(name) == nullptr && globals_.count(name) == 0 &&
              operators_.lookup(name) == nullptr) {
            check_call_arity(e, name, 2, /*variadic=*/false);
            return;
          }
          switch (resolve(e->callee)) {
            case NameKind::kGlobalFunction: {
              const FuncDecl* f = globals_.at(name);
              check_call_arity(e, name, f->params.size(), /*variadic=*/false);
              return;
            }
            case NameKind::kOperator: {
              const OperatorInfo* info = operators_.lookup(name);
              check_call_arity(e, name, static_cast<size_t>(info->arity), info->variadic);
              return;
            }
            case NameKind::kLocalFunction: {
              const Local* local = find_local(name);
              check_call_arity(e, name, static_cast<size_t>(local->arity), /*variadic=*/false);
              return;
            }
            case NameKind::kLocalValue:
              // Closure call through a variable; arity checked at run time.
              return;
            case NameKind::kUnknown:
              return;
          }
        }
        visit(e->callee);  // computed callee (e.g. f(x)(y))
        return;
      }
      case ExprKind::kIf:
        visit(e->cond);
        visit(e->then_branch);
        visit(e->else_branch);
        return;
      case ExprKind::kLet: {
        ScopeGuard scope(*this);
        std::vector<std::string> names_in_let;
        for (const Binding& b : e->bindings) {
          for (const std::string& n : b.names) names_in_let.push_back(n);
          if (b.kind == Binding::Kind::kFunction) {
            check_duplicate_names(b.params, b.range, "parameter");
            // The local function's name is visible to its own body
            // (self-recursion) and to later bindings.
            push_local(b.names[0], /*is_function=*/true, static_cast<int>(b.params.size()));
            ScopeGuard fn_scope(*this);
            for (const std::string& p : b.params) push_local(p, false, 0);
            visit(b.value);
          } else {
            visit(b.value);
            for (const std::string& n : b.names) push_local(n, false, 0);
          }
        }
        check_duplicate_names(names_in_let, e->range, "binding");
        visit(e->body);
        return;
      }
      case ExprKind::kIterate: {
        std::vector<std::string> names;
        for (const LoopVar& lv : e->loop_vars) names.push_back(lv.name);
        check_duplicate_names(names, e->range, "loop variable");
        // Initializers run in the enclosing scope.
        for (const LoopVar& lv : e->loop_vars) visit(lv.init);
        ScopeGuard scope(*this);
        for (const LoopVar& lv : e->loop_vars) push_local(lv.name, false, 0);
        for (const LoopVar& lv : e->loop_vars) visit(lv.step);
        visit(e->cond);
        bool found = false;
        for (const LoopVar& lv : e->loop_vars) found = found || lv.name == e->result_name;
        if (!found) {
          diags_.error(e->range,
                       "iterate result '" + e->result_name + "' is not a loop variable");
        }
        return;
      }
    }
  }

  /// A function is recursive iff it can reach itself in the call graph:
  /// it lies on a non-trivial SCC, or has a self edge. Tarjan, iterative.
  void compute_recursion() { compute_recursive_functions(result_); }

  const Program& program_;
  const OperatorTable& operators_;
  DiagnosticEngine& diags_;

  std::unordered_map<std::string, const FuncDecl*> globals_;
  std::unordered_map<std::string, std::vector<Local>> locals_;
  std::vector<std::string> push_log_;
  std::string current_function_;
  AnalysisResult result_;
};

}  // namespace

AnalysisResult analyze_environment(const Program& program, const OperatorTable& operators,
                                   DiagnosticEngine& diags, const AnalysisOptions& options) {
  return Analyzer(program, operators, diags).run(options);
}

void compute_recursive_functions(AnalysisResult& analysis) {
  analysis.recursive_functions.clear();
  // Iterative Tarjan over the (string-keyed) call graph.
  struct NodeInfo {
    int index = -1;
    int lowlink = 0;
    bool on_stack = false;
  };
  std::unordered_map<std::string, NodeInfo> info;
  std::vector<std::string> scc_stack;
  int next_index = 0;

  struct Frame {
    const std::string* name;
    const std::unordered_set<std::string>* edges;
    std::unordered_set<std::string>::const_iterator next;
  };

  for (const auto& [root, _] : analysis.callgraph) {
    if (info[root].index != -1) continue;
    std::vector<Frame> stack;
    auto push_node = [&](const std::string& name) {
      NodeInfo& ni = info[name];
      ni.index = ni.lowlink = next_index++;
      ni.on_stack = true;
      scc_stack.push_back(name);
      static const std::unordered_set<std::string> kEmpty;
      auto it = analysis.callgraph.find(name);
      const auto* edges = it == analysis.callgraph.end() ? &kEmpty : &it->second;
      stack.push_back(Frame{&name, edges, edges->begin()});
    };
    push_node(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next != frame.edges->end()) {
        const std::string& target = *frame.next;
        ++frame.next;
        NodeInfo& ti = info[target];
        if (ti.index == -1) {
          // Self edges mark recursion immediately (Tarjan handles them
          // too, but the explicit check keeps singleton SCCs simple).
          push_node(target);
        } else if (ti.on_stack) {
          NodeInfo& fi = info[*frame.name];
          fi.lowlink = std::min(fi.lowlink, ti.index);
        }
        continue;
      }
      // Finished this node: pop frame, close SCC if it is a root.
      const std::string name = *frame.name;
      stack.pop_back();
      NodeInfo& ni = info[name];
      if (!stack.empty()) {
        NodeInfo& pi = info[*stack.back().name];
        pi.lowlink = std::min(pi.lowlink, ni.lowlink);
      }
      if (ni.lowlink == ni.index) {
        std::vector<std::string> component;
        for (;;) {
          const std::string member = scc_stack.back();
          scc_stack.pop_back();
          info[member].on_stack = false;
          component.push_back(member);
          if (member == name) break;
        }
        const bool self_loop = [&] {
          auto it = analysis.callgraph.find(name);
          return component.size() == 1 && it != analysis.callgraph.end() &&
                 it->second.count(name) > 0;
        }();
        if (component.size() > 1 || self_loop) {
          for (const std::string& member : component) {
            analysis.recursive_functions.insert(member);
          }
        }
      }
    }
  }
}

}  // namespace delirium
