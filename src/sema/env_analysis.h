// Environment analysis — the "Env Analysis" pass of Table 1.
//
// Resolves every name to a parameter, let binding, loop variable, local
// function, global function, or operator; checks arity on direct calls;
// enforces single assignment (no duplicate names per binding scope); and
// computes the call graph plus the set of recursive functions, which the
// graph builder uses to classify call-closure nodes into the runtime's
// priority levels (§7).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/lang/ast.h"
#include "src/sema/operator_table.h"
#include "src/support/diagnostics.h"

namespace delirium {

struct AnalysisResult {
  /// function name -> names of global functions it references.
  std::unordered_map<std::string, std::unordered_set<std::string>> callgraph;
  /// Functions on a call-graph cycle (including self loops).
  std::unordered_set<std::string> recursive_functions;
  /// operator name -> number of textual uses.
  std::unordered_map<std::string, int> operator_uses;
  bool ok = false;

  bool is_recursive(const std::string& fn) const { return recursive_functions.count(fn) > 0; }
};

struct AnalysisOptions {
  /// Require a zero-argument entry point named `main`.
  bool require_main = true;
  std::string entry_point = "main";
};

/// Run environment analysis over a macro-expanded program.
AnalysisResult analyze_environment(const Program& program, const OperatorTable& operators,
                                   DiagnosticEngine& diags, const AnalysisOptions& options = {});

/// Recompute `recursive_functions` from `callgraph` (Tarjan SCC; a
/// function is recursive iff it lies on a cycle, including self loops).
/// Exposed so the parallel compiler can rerun it over a merged graph.
void compute_recursive_functions(AnalysisResult& analysis);

}  // namespace delirium
