// Compile-time view of the operator registry.
//
// Operators are the embedded sequential sub-computations (C/Fortran in the
// paper, C++ here). The compiler needs only their signatures: name, arity,
// purity (for CSE/DCE), and an optional constant folder (for constant
// propagation). The runtime's OperatorRegistry implements this interface.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

namespace delirium {

/// A compile-time constant: the atomic values of the language.
/// std::monostate represents NULL.
using ConstValue = std::variant<std::monostate, int64_t, double, std::string>;

/// Folds an application of a pure operator over constant arguments.
/// Returns nullopt when the operator cannot fold these inputs.
using ConstFolder =
    std::function<std::optional<ConstValue>(std::span<const ConstValue>)>;

struct OperatorInfo {
  std::string name;
  int arity = 0;           // fixed argument count; ignored when variadic
  bool variadic = false;
  /// Pure operators have no side effects and do not destructively modify
  /// arguments; they are eligible for CSE, DCE, and constant folding.
  bool pure = false;
  ConstFolder fold;        // optional; only meaningful when pure
  /// Per-argument write-access declaration (§2.1). The sole-consumer
  /// analysis and the graph verifier read this at compile time; the
  /// runtime enforces it through copy-on-write.
  std::vector<bool> destructive;

  bool is_destructive(size_t arg) const {
    return arg < destructive.size() && destructive[arg];
  }
  bool any_destructive() const {
    for (bool d : destructive) {
      if (d) return true;
    }
    return false;
  }
};

/// Abstract lookup used by sema, the optimizer, and the graph builder.
class OperatorTable {
 public:
  virtual ~OperatorTable() = default;
  /// Returns the operator's signature, or nullptr if unknown.
  virtual const OperatorInfo* lookup(const std::string& name) const = 0;
  /// Stable dense index of the operator (used by compiled graphs), or -1.
  virtual int index_of(const std::string& name) const = 0;
};

/// An always-empty table, for programs that use no operators.
class EmptyOperatorTable final : public OperatorTable {
 public:
  const OperatorInfo* lookup(const std::string&) const override { return nullptr; }
  int index_of(const std::string&) const override { return -1; }
};

}  // namespace delirium
