#!/usr/bin/env python3
"""Check relative markdown links in README.md and docs/.

Walks every inline link and image ([text](target)) in the checked files,
resolves relative targets against the linking file, and fails (exit 1)
listing each target that does not exist. Absolute URLs (http/https/
mailto) and pure in-page anchors (#...) are skipped; a relative target's
anchor part is stripped before the existence check.

Also verifies the README documentation index covers docs/: every
docs/*.md must be linked from README.md (the acceptance criterion that
each doc page is reachable from the index).

Usage: check_md_links.py [repo_root]
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def checked_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").glob("*.md"))


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    errors = []
    for md in checked_files(root):
        if not md.is_file():
            errors.append(f"{md}: checked file is missing")
            continue
        text = md.read_text(encoding="utf-8")
        # Drop fenced code blocks: flag tables and shell examples are not links.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                line = text[: match.start()].count("\n") + 1
                errors.append(f"{md.relative_to(root)}:{line}: dead link -> {target}")

    readme = (root / "README.md").read_text(encoding="utf-8")
    for doc in sorted((root / "docs").glob("*.md")):
        if f"docs/{doc.name}" not in readme:
            errors.append(f"README.md: docs/{doc.name} is not linked from the index")

    if errors:
        print("\n".join(errors))
        print(f"{len(errors)} markdown link problem(s)")
        return 1
    print("all markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
