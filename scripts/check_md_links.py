#!/usr/bin/env python3
"""Check relative markdown links in README.md and docs/.

Walks every inline link and image ([text](target)) in the checked files,
resolves relative targets against the linking file, and fails (exit 1)
listing each target that does not exist. Absolute URLs (http/https/
mailto) and pure in-page anchors (#...) are skipped; a relative target's
anchor part is stripped before the existence check.

Also verifies the README documentation index covers docs/: every
docs/*.md must be linked from README.md (the acceptance criterion that
each doc page is reachable from the index).

Also enforces the delc flag contract at the source level: the set of
`--flag` tokens in the print_usage() body of examples/delc.cpp must
equal the set documented across README.md and docs/ (tools_test checks
the same contract against the built binary; this copy keeps the
docs_links ctest meaningful without a build).

Usage: check_md_links.py [repo_root]
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
FLAG_RE = re.compile(r"--[a-z][a-z-]*")


def checked_files(root: Path):
    yield root / "README.md"
    yield from sorted((root / "docs").glob("*.md"))


def flag_contract_errors(root: Path):
    """delc flag drift: print_usage() in examples/delc.cpp vs docs/CLI.md.

    docs/CLI.md is the canonical flag reference (other docs link to it),
    so the contract is set equality between the flags it mentions
    anywhere (tables and examples) and the flags print_usage() names.
    """
    delc = root / "examples" / "delc.cpp"
    cli_md = root / "docs" / "CLI.md"
    if not delc.is_file() or not cli_md.is_file():
        return [f"flag contract: missing {delc} or {cli_md}"]
    source = delc.read_text(encoding="utf-8")
    start = source.find("void print_usage")
    end = source.find("int usage()", start)
    if start < 0 or end < 0:
        return ["flag contract: cannot locate print_usage() in examples/delc.cpp"]
    usage_flags = set(FLAG_RE.findall(source[start:end]))
    doc_flags = set(FLAG_RE.findall(cli_md.read_text(encoding="utf-8")))
    errors = []
    for flag in sorted(doc_flags - usage_flags):
        errors.append(f"docs/CLI.md: {flag} is documented but absent from delc print_usage()")
    for flag in sorted(usage_flags - doc_flags):
        errors.append(f"examples/delc.cpp: {flag} is in print_usage() but undocumented in docs/CLI.md")
    return errors


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parents[1]
    errors = []
    for md in checked_files(root):
        if not md.is_file():
            errors.append(f"{md}: checked file is missing")
            continue
        text = md.read_text(encoding="utf-8")
        # Drop fenced code blocks: flag tables and shell examples are not links.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                line = text[: match.start()].count("\n") + 1
                errors.append(f"{md.relative_to(root)}:{line}: dead link -> {target}")

    readme = (root / "README.md").read_text(encoding="utf-8")
    for doc in sorted((root / "docs").glob("*.md")):
        if f"docs/{doc.name}" not in readme:
            errors.append(f"README.md: docs/{doc.name} is not linked from the index")

    errors.extend(flag_contract_errors(root))

    if errors:
        print("\n".join(errors))
        print(f"{len(errors)} markdown link problem(s)")
        return 1
    print("all markdown links resolve; delc flag contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
