// Environment analysis unit tests: name resolution, arity checks, single
// assignment, recursion detection, and the call graph.
#include <gtest/gtest.h>

#include "src/lang/macro.h"
#include "src/lang/parser.h"
#include "src/runtime/registry.h"
#include "src/sema/env_analysis.h"

namespace delirium {
namespace {

struct Analyzed {
  AstContext ctx;
  Program program;
  DiagnosticEngine diags;
  AnalysisResult result;
  std::string summary;
};

std::unique_ptr<Analyzed> analyze(const std::string& text, AnalysisOptions options = {}) {
  auto out = std::make_unique<Analyzed>();
  SourceFile file("<test>", text);
  out->program = parse_source(file, out->ctx, out->diags);
  expand_macros(out->program, out->ctx, out->diags);
  static OperatorRegistry registry = [] {
    OperatorRegistry r;
    register_builtin_operators(r);
    return r;
  }();
  out->result = analyze_environment(out->program, registry, out->diags, options);
  out->summary = out->diags.summary(file);
  return out;
}

TEST(Sema, AcceptsWellFormedProgram) {
  auto a = analyze("main() add(1, 2)");
  EXPECT_TRUE(a->result.ok) << a->summary;
}

TEST(Sema, UnknownNameIsError) {
  auto a = analyze("main() no_such_thing(1)");
  EXPECT_FALSE(a->result.ok);
  EXPECT_NE(a->summary.find("no_such_thing"), std::string::npos);
}

TEST(Sema, UnknownVariableIsError) {
  auto a = analyze("main() let x = 1 in y");
  EXPECT_FALSE(a->result.ok);
}

TEST(Sema, OperatorArityChecked) {
  auto a = analyze("main() add(1)");
  EXPECT_FALSE(a->result.ok);
  EXPECT_NE(a->summary.find("expects 2"), std::string::npos);
}

TEST(Sema, FunctionArityChecked) {
  auto a = analyze("f(x, y) add(x, y)\nmain() f(1)");
  EXPECT_FALSE(a->result.ok);
}

TEST(Sema, LocalFunctionArityChecked) {
  auto a = analyze("main() let g(x) x in g(1, 2)");
  EXPECT_FALSE(a->result.ok);
}

TEST(Sema, ClosureCallThroughValueNotStaticallyChecked) {
  auto a = analyze(R"(
apply(f) f(1, 2, 3)
bump(x) x
main() apply(bump)
)");
  EXPECT_TRUE(a->result.ok) << a->summary;  // checked at run time instead
}

TEST(Sema, MissingMainIsError) {
  auto a = analyze("f() 1");
  EXPECT_FALSE(a->result.ok);
}

TEST(Sema, MainWithParamsIsError) {
  auto a = analyze("main(x) x");
  EXPECT_FALSE(a->result.ok);
}

TEST(Sema, MissingMainAllowedWhenConfigured) {
  AnalysisOptions options;
  options.require_main = false;
  auto a = analyze("f() 1", options);
  EXPECT_TRUE(a->result.ok) << a->summary;
}

TEST(Sema, DuplicateFunctionIsError) {
  auto a = analyze("f() 1\nf() 2\nmain() f()");
  EXPECT_FALSE(a->result.ok);
}

TEST(Sema, DuplicateParamsViolateSingleAssignment) {
  auto a = analyze("f(a, a) a\nmain() f(1, 2)");
  EXPECT_FALSE(a->result.ok);
  EXPECT_NE(a->summary.find("single assignment"), std::string::npos);
}

TEST(Sema, DuplicateLetBindingViolatesSingleAssignment) {
  auto a = analyze("main() let x = 1 x = 2 in x");
  EXPECT_FALSE(a->result.ok);
}

TEST(Sema, ShadowingInNestedLetIsAllowed) {
  auto a = analyze("main() let x = 1 in let x = 2 in x");
  EXPECT_TRUE(a->result.ok) << a->summary;
}

TEST(Sema, DuplicateLoopVarsAreError) {
  auto a = analyze("main() iterate { i = 0, i  i = 1, i } while 0, result i");
  EXPECT_FALSE(a->result.ok);
}

TEST(Sema, IterateResultMustBeLoopVar) {
  auto a = analyze("main() let z = 1 in iterate { i = 0, incr(i) } while 0, result z");
  EXPECT_FALSE(a->result.ok);
}

TEST(Sema, OperatorAsValueIsError) {
  auto a = analyze("apply(f) f(1)\nmain() apply(incr)");
  EXPECT_FALSE(a->result.ok);
  EXPECT_NE(a->summary.find("wrap it in a function"), std::string::npos);
}

TEST(Sema, FunctionAsValueIsAllowed) {
  auto a = analyze("apply(f) f(1)\nbump(x) incr(x)\nmain() apply(bump)");
  EXPECT_TRUE(a->result.ok) << a->summary;
}

TEST(Sema, DetectsSelfRecursion) {
  auto a = analyze("fact(n) if n then mul(n, fact(decr(n))) else 1\nmain() fact(3)");
  ASSERT_TRUE(a->result.ok) << a->summary;
  EXPECT_TRUE(a->result.is_recursive("fact"));
  EXPECT_FALSE(a->result.is_recursive("main"));
}

TEST(Sema, DetectsMutualRecursion) {
  auto a = analyze(R"(
even(n) if n then odd(decr(n)) else 1
odd(n) if n then even(decr(n)) else 0
main() even(4)
)");
  ASSERT_TRUE(a->result.ok);
  EXPECT_TRUE(a->result.is_recursive("even"));
  EXPECT_TRUE(a->result.is_recursive("odd"));
  EXPECT_FALSE(a->result.is_recursive("main"));
}

TEST(Sema, CallGraphRecorded) {
  auto a = analyze("g() 1\nf() g()\nmain() f()");
  ASSERT_TRUE(a->result.ok);
  EXPECT_TRUE(a->result.callgraph.at("main").count("f"));
  EXPECT_TRUE(a->result.callgraph.at("f").count("g"));
}

TEST(Sema, OperatorUsesCounted) {
  auto a = analyze("main() add(incr(1), incr(2))");
  ASSERT_TRUE(a->result.ok);
  EXPECT_EQ(a->result.operator_uses.at("incr"), 2);
  EXPECT_EQ(a->result.operator_uses.at("add"), 1);
}

TEST(Sema, LocalFunctionSeesItself) {
  auto a = analyze("main() let f(n) if n then f(decr(n)) else 0 in f(3)");
  EXPECT_TRUE(a->result.ok) << a->summary;
}

TEST(Sema, TarjanHandlesLongChains) {
  // A deep acyclic chain must not be marked recursive.
  std::string source;
  for (int i = 0; i < 200; ++i) {
    source += "f" + std::to_string(i) + "() f" + std::to_string(i + 1) + "()\n";
  }
  source += "f200() 1\nmain() f0()\n";
  auto a = analyze(source);
  ASSERT_TRUE(a->result.ok);
  EXPECT_TRUE(a->result.recursive_functions.empty());
}

TEST(Sema, TarjanHandlesLargeCycle) {
  std::string source;
  for (int i = 0; i < 50; ++i) {
    source += "f" + std::to_string(i) + "() f" + std::to_string((i + 1) % 50) + "()\n";
  }
  source += "main() f0()\n";
  auto a = analyze(source);
  ASSERT_TRUE(a->result.ok);
  EXPECT_EQ(a->result.recursive_functions.size(), 50u);
}

}  // namespace
}  // namespace delirium
