// Sole-consumer analysis tests: classification soundness, the runtime
// fast path (cow_copies drops to zero on provably-unique programs, with
// the elisions counted in cow_skipped), determinism with the fast path
// on and off across worker counts, and the --lint-json golden file.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/analysis/sole_consumer.h"
#include "src/tools/analysis_json.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"

namespace delirium {
namespace {

/// make/poke/read_sum: the canonical destructive-block fixture. poke
/// declares write access to argument 0 and passes the block through.
void register_block_ops(OperatorRegistry& reg) {
  register_builtin_operators(reg);
  reg.add("make", 1, [](OpContext& ctx) {
    return Value::block(std::vector<int64_t>(static_cast<size_t>(ctx.arg_int(0)), 0));
  });
  reg.add("poke", 2, [](OpContext& ctx) {
    auto& v = ctx.arg_block_mut<std::vector<int64_t>>(0);
    v[static_cast<size_t>(ctx.arg_int(1)) % v.size()] += ctx.arg_int(1);
    return ctx.take(0);
  }).destructive(0);
  reg.add("read_sum", 1, [](OpContext& ctx) {
    int64_t total = 0;
    for (int64_t x : ctx.arg_block<std::vector<int64_t>>(0)) total += x;
    return Value::of(total);
  }).pure();
  reg.add("sum2", 2, [](OpContext& ctx) {
    int64_t total = 0;
    for (int64_t x : ctx.arg_block<std::vector<int64_t>>(0)) total += x;
    for (int64_t x : ctx.arg_block<std::vector<int64_t>>(1)) total += x;
    return Value::of(total);
  }).pure();
}

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_block_ops(reg);
    return reg;
  }();
  return r;
}

/// The acceptance pattern: b waits unread in first()'s second argument
/// slot while poke runs. Without the analysis the runtime must clone (the
/// refcount is 2); with it, the clone is provably wasted and elided.
constexpr const char* kHeldUniqueProgram = R"(
first(x, y) x
main()
  let b = make(8)
      c = poke(b, 3)
  in first(read_sum(c), b)
)";

CompileResult compile(const std::string& text, bool analyze = true, bool optimize = false) {
  CompileOptions options;
  options.optimize = optimize;
  // Inlining would erase first()'s dead parameter and with it the very
  // held-reference this suite studies.
  options.opt.inline_expansion = false;
  options.analyze_unique = analyze;
  CompileResult result = compile_source("<test>", text, registry(), options);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  return result;
}

const Node* find_operator(const CompiledProgram& program, const std::string& op) {
  for (const auto& tmpl : program.templates) {
    for (const Node& n : tmpl->nodes) {
      if (n.kind == NodeKind::kOperator && n.op_name == op) return &n;
    }
  }
  return nullptr;
}

TEST(SoleConsumer, HeldNeverReadBlockIsUnique) {
  for (bool optimize : {false, true}) {
    CompileResult result = compile(kHeldUniqueProgram, true, optimize);
    const Node* poke = find_operator(result.program, "poke");
    ASSERT_NE(poke, nullptr) << "optimize=" << optimize;
    ASSERT_EQ(poke->input_classes.size(), 2u);
    EXPECT_EQ(poke->input_classes[0], ConsumeClass::kUnique) << "optimize=" << optimize;
    EXPECT_EQ(result.sole_consumer.unique_edges, 1u);
    EXPECT_EQ(result.sole_consumer.shared_edges, 0u);
  }
}

TEST(SoleConsumer, OperatorChainStaysUnique) {
  // Each poke output feeds exactly one consumer; b0 is additionally held
  // (never read) by first(). Every destructive edge is provably unique.
  CompileResult result = compile(R"(
first(x, y) x
main()
  let b0 = make(8)
      b1 = poke(b0, 1)
      b2 = poke(b1, 2)
      b3 = poke(b2, 3)
  in first(read_sum(b3), b0)
)");
  EXPECT_EQ(result.sole_consumer.destructive_edges, 3u);
  EXPECT_EQ(result.sole_consumer.unique_edges, 3u);
  EXPECT_EQ(result.sole_consumer.shared_edges, 0u);
}

TEST(SoleConsumer, DownstreamReaderIsGuaranteedShared) {
  // sum2 needs poke's result AND holds b: when poke fires, sum2's slot
  // still references b, so the copy is guaranteed.
  CompileResult result = compile(R"(
main()
  let b = make(8)
  in sum2(poke(b, 3), b)
)");
  const Node* poke = find_operator(result.program, "poke");
  ASSERT_NE(poke, nullptr);
  EXPECT_EQ(poke->input_classes[0], ConsumeClass::kShared);
  ASSERT_EQ(result.lint.size(), 1u);
  EXPECT_NE(result.lint[0].message.find("guaranteed CoW copy"), std::string::npos)
      << result.lint[0].message;
}

TEST(SoleConsumer, ParallelDestructiveUsesAreShared) {
  CompileResult result = compile(R"(
main()
  let b = make(8)
      p0 = read_sum(poke(b, 1))
      p1 = read_sum(poke(b, 2))
  in add(p0, p1)
)");
  EXPECT_EQ(result.sole_consumer.shared_edges, 2u);
  EXPECT_EQ(result.sole_consumer.unique_edges, 0u);
}

TEST(SoleConsumer, RacingPureReaderStaysUnknown) {
  // read_sum(b) may run before or after poke — the copy depends on
  // scheduling, so the verdict must stay kUnknown (silent, no fast path).
  CompileResult result = compile(R"(
main()
  let b = make(8)
  in add(read_sum(poke(b, 3)), read_sum(b))
)");
  const Node* poke = find_operator(result.program, "poke");
  ASSERT_NE(poke, nullptr);
  EXPECT_EQ(poke->input_classes[0], ConsumeClass::kUnknown);
  EXPECT_EQ(result.sole_consumer.unknown_edges, 1u);
  EXPECT_TRUE(result.lint.empty());
}

TEST(SoleConsumer, ParamProducedBlockStaysUnknown) {
  // Inside g the block arrives as a parameter: the caller may hold other
  // references, so no verdict.
  CompileResult result = compile(R"(
g(b) read_sum(poke(b, 3))
main() g(make(8))
)");
  const Node* poke = find_operator(result.program, "poke");
  ASSERT_NE(poke, nullptr);
  EXPECT_EQ(poke->input_classes[0], ConsumeClass::kUnknown);
}

TEST(SoleConsumer, RuntimeSkipsProvablyWastedClone) {
  CompileResult with = compile(kHeldUniqueProgram, true);
  CompileResult without = compile(kHeldUniqueProgram, false);

  Runtime runtime(registry(), {.num_workers = 2});
  const Value v_without = runtime.run(without.program);
  const RunStats s_without = runtime.last_stats();
  const Value v_with = runtime.run(with.program);
  const RunStats s_with = runtime.last_stats();

  // Baseline: the held reference forces exactly one deterministic clone.
  EXPECT_EQ(s_without.cow_copies, 1u);
  EXPECT_EQ(s_without.cow_skipped, 0u);
  // Fast path: zero copies; the elision is counted instead.
  EXPECT_EQ(s_with.cow_copies, 0u);
  EXPECT_EQ(s_with.cow_skipped, 1u);
  EXPECT_EQ(v_with.as_int(), v_without.as_int());
  EXPECT_EQ(v_with.as_int(), 3);
}

TEST(SoleConsumer, FastPathKillSwitchRestoresClones) {
  CompileResult result = compile(kHeldUniqueProgram, true);
  RuntimeConfig config{.num_workers = 2};
  config.unique_fastpath = false;
  Runtime runtime(registry(), config);
  EXPECT_EQ(runtime.run(result.program).as_int(), 3);
  EXPECT_EQ(runtime.last_stats().cow_copies, 1u);
  EXPECT_EQ(runtime.last_stats().cow_skipped, 0u);
}

TEST(SoleConsumer, SimRuntimeSkipsCloneToo) {
  CompileResult result = compile(kHeldUniqueProgram, true);
  {
    SimRuntime sim(registry(), SimConfig{.num_procs = 4});
    const SimResult r = sim.run(result.program);
    EXPECT_EQ(r.result.as_int(), 3);
    EXPECT_EQ(r.stats.cow_copies, 0u);
    EXPECT_EQ(r.stats.cow_skipped, 1u);
  }
  {
    SimConfig config{.num_procs = 4};
    config.unique_fastpath = false;
    SimRuntime sim(registry(), config);
    const SimResult r = sim.run(result.program);
    EXPECT_EQ(r.result.as_int(), 3);
    EXPECT_EQ(r.stats.cow_copies, 1u);
    EXPECT_EQ(r.stats.cow_skipped, 0u);
  }
}

TEST(SoleConsumer, DeterministicAcrossWorkersWithFastPathOnAndOff) {
  // A larger program mixing unique chains with genuinely-contended pokes:
  // results must be bit-identical for every worker count, with the fast
  // path enabled or disabled.
  const std::string source = R"(
first(x, y) x
main()
  let b0 = make(16)
      b1 = poke(b0, 1)
      b2 = poke(b1, 2)
      held = first(read_sum(b2), b0)
      s = make(16)
      q0 = read_sum(poke(s, 5))
      q1 = read_sum(poke(s, 7))
  in add(held, add(q0, q1))
)";
  CompileResult analyzed = compile(source, true);
  CompileResult plain = compile(source, false);

  int64_t expected = 0;
  bool have_expected = false;
  for (int workers : {1, 2, 4, 8}) {
    for (bool fastpath : {true, false}) {
      RuntimeConfig config{.num_workers = workers};
      config.unique_fastpath = fastpath;
      Runtime runtime(registry(), config);
      const int64_t a = runtime.run(analyzed.program).as_int();
      const int64_t b = runtime.run(plain.program).as_int();
      if (!have_expected) {
        expected = a;
        have_expected = true;
      }
      EXPECT_EQ(a, expected) << "workers=" << workers << " fastpath=" << fastpath;
      EXPECT_EQ(b, expected) << "workers=" << workers << " fastpath=" << fastpath;
    }
  }
}

TEST(SoleConsumerStress, LongUniqueChainNeverCopies) {
  // 40 sequential pokes, all provably unique, with the original block
  // held (never read) to keep the refcount above one the whole time.
  // Baseline: the first poke clones (and then owns the copy), so exactly
  // one cow_copy. Fast path: no clone ever happens, so the block stays
  // shared through the entire chain and all 40 elisions are counted.
  std::ostringstream src;
  src << "first(x, y) x\nmain()\n  let b0 = make(64)\n";
  const int kChain = 40;
  for (int i = 1; i <= kChain; ++i) {
    src << "      b" << i << " = poke(b" << i - 1 << ", " << i << ")\n";
  }
  src << "  in first(read_sum(b" << kChain << "), b0)";

  CompileResult analyzed = compile(src.str(), true);
  CompileResult plain = compile(src.str(), false);
  EXPECT_EQ(analyzed.sole_consumer.unique_edges, static_cast<size_t>(kChain));

  int64_t expected = 0;
  for (int i = 1; i <= kChain; ++i) expected += i;
  for (int workers : {1, 4, 8}) {
    Runtime runtime(registry(), {.num_workers = workers});
    EXPECT_EQ(runtime.run(analyzed.program).as_int(), expected) << workers;
    EXPECT_EQ(runtime.last_stats().cow_copies, 0u) << workers;
    EXPECT_EQ(runtime.last_stats().cow_skipped, static_cast<uint64_t>(kChain)) << workers;

    EXPECT_EQ(runtime.run(plain.program).as_int(), expected) << workers;
    EXPECT_EQ(runtime.last_stats().cow_copies, 1u) << workers;
  }
}

TEST(SoleConsumer, LintJsonMatchesGoldenFile) {
  const std::string source = R"(
main()
  let b = make(8)
  in sum2(poke(b, 3), b)
)";
  CompileResult result = compile(source);
  SourceFile file("lint_shared.dlr", source);
  const std::string json = tools::render_lint_json(result.lint, result.sole_consumer, file);

  const std::string golden_path = std::string(DELIRIUM_GOLDEN_DIR) + "/lint_shared.json";
  if (std::getenv("DELIRIUM_REGEN_GOLDEN") != nullptr) {
    std::ofstream(golden_path) << json;
  }
  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden.good()) << "missing golden file";
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(json, expected.str());
}

}  // namespace
}  // namespace delirium
