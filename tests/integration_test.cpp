// Cross-cutting integration scenarios: several subsystems composed the
// way a downstream user would compose them.
#include <gtest/gtest.h>

#include <sstream>

#include "src/apps/grid/grid.h"
#include "src/apps/retina/retina_ops.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/tools/report.h"
#include "src/tools/trace.h"

namespace delirium {
namespace {

TEST(Integration, TwoApplicationsShareOneRegistryAndRuntime) {
  // Retina and grid operators coexist in one registry; one runtime runs
  // both programs interleaved.
  retina::RetinaParams rp;
  rp.width = rp.height = 64;
  rp.num_targets = 8;
  rp.num_iter = 2;
  grid::GridParams gp;
  gp.width = gp.height = 32;
  gp.steps = 4;

  OperatorRegistry registry;
  register_builtin_operators(registry);
  retina::register_retina_operators(registry, rp);
  grid::register_grid_operators(registry, gp);

  CompiledProgram retina_prog =
      compile_or_throw(retina::retina_source(retina::RetinaVersion::kV2Balanced, rp), registry);
  CompiledProgram grid_prog = compile_or_throw(grid::grid_source(gp), registry);

  Runtime runtime(registry, {.num_workers = 3});
  for (int round = 0; round < 3; ++round) {
    Value r = runtime.run(retina_prog);
    EXPECT_EQ(retina::checksum(r.block_as<retina::RetinaModel>()),
              retina::checksum(retina::sequential_run(rp)));
    Value g = runtime.run(grid_prog);
    EXPECT_EQ(g.block_as<grid::Grid>().rows, grid::sequential_run(gp).rows);
  }
}

TEST(Integration, NodeTimingReportHasThePaperFormat) {
  auto source = R"(
main()
  iterate { i = 0, incr(i) } while less_than(i, 3), result i
)";
  OperatorRegistry registry;
  register_builtin_operators(registry);
  CompiledProgram program = compile_or_throw(source, registry);
  RuntimeConfig config{.num_workers = 1};
  config.enable_node_timing = true;
  Runtime runtime(registry, config);
  runtime.run(program);
  std::ostringstream os;
  runtime.print_node_timings(os);
  // "call of incr took <ticks>" — the §5.2 diagnostic dump.
  EXPECT_NE(os.str().find("call of incr took "), std::string::npos);
  EXPECT_NE(os.str().find("call of less_than took "), std::string::npos);
}

TEST(Integration, SimTimingsFeedTheTraceExporter) {
  retina::RetinaParams p;
  p.width = p.height = 64;
  p.num_targets = 8;
  p.num_iter = 1;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  retina::register_retina_operators(registry, p);
  CompiledProgram program =
      compile_or_throw(retina::retina_source(retina::RetinaVersion::kV2Balanced, p), registry);
  SimConfig config;
  config.num_procs = 4;
  config.enable_node_timing = true;
  SimRuntime sim(registry, config);
  SimResult result = sim.run(program);
  ASSERT_FALSE(result.timings.empty());
  std::ostringstream os;
  tools::write_chrome_trace(os, result);
  EXPECT_NE(os.str().find("convol_bite"), std::string::npos);
  // Aggregation over the same timings names every operator.
  auto agg = tools::aggregate_timings(result.timings);
  EXPECT_TRUE(agg.count("convol_bite"));
  EXPECT_TRUE(agg.count("update_bite"));
}

TEST(Integration, RunStatsAreConsistent) {
  OperatorRegistry registry;
  register_builtin_operators(registry);
  CompiledProgram program = compile_or_throw(R"(
f(x) add(x, 1)
main() add(f(1), f(2))
)",
                                             registry);
  Runtime runtime(registry, {.num_workers = 2});
  runtime.run(program);
  const RunStats& stats = runtime.last_stats();
  EXPECT_GE(stats.nodes_executed, stats.operator_invocations);
  EXPECT_GE(stats.peak_live_activations, 1u);
  EXPECT_LE(stats.peak_live_activations, stats.activations_created);
}

TEST(Integration, SimAndRuntimeAgreeOnEveryApp) {
  // Grid, both coordination styles, virtual vs threaded.
  grid::GridParams gp;
  gp.width = gp.height = 32;
  gp.steps = 3;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  grid::register_grid_operators(registry, gp);
  for (const bool use_parmap : {false, true}) {
    CompiledProgram program = compile_or_throw(
        use_parmap ? grid::grid_source_parmap(gp) : grid::grid_source(gp), registry);
    Runtime threaded(registry, {.num_workers = 4});
    SimRuntime virtual_time(registry, {.num_procs = 4});
    const Value a = threaded.run(program);
    SimResult b = virtual_time.run(program);
    EXPECT_EQ(a.block_as<grid::Grid>().rows, b.result.block_as<grid::Grid>().rows)
        << (use_parmap ? "parmap" : "classic");
  }
}

TEST(Integration, GraphOptPreservesAppBehaviour) {
  // Compile the retina program with and without the graph optimizer; the
  // model must be bitwise identical either way.
  retina::RetinaParams p;
  p.width = p.height = 64;
  p.num_targets = 8;
  p.num_iter = 2;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  retina::register_retina_operators(registry, p);
  const std::string source = retina::retina_source(retina::RetinaVersion::kV1Imbalanced, p);

  CompileOptions no_opt;
  no_opt.optimize = false;
  CompiledProgram plain = compile_or_throw(source, registry, no_opt);
  CompiledProgram pruned = compile_or_throw(source, registry, no_opt);
  optimize_graphs(pruned, registry);

  Runtime runtime(registry, {.num_workers = 2});
  Value a = runtime.run(plain);
  Value b = runtime.run(pruned);
  EXPECT_EQ(a.block_as<retina::RetinaModel>().motion, b.block_as<retina::RetinaModel>().motion);
}

TEST(Integration, AffinityModesOnThreadedRuntimeStayCorrect) {
  grid::GridParams gp;
  gp.width = gp.height = 32;
  gp.steps = 4;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  grid::register_grid_operators(registry, gp);
  CompiledProgram program = compile_or_throw(grid::grid_source(gp), registry);
  const auto expected = grid::sequential_run(gp).rows;
  for (const auto affinity :
       {AffinityMode::kNone, AffinityMode::kOperator, AffinityMode::kData}) {
    RuntimeConfig config{.num_workers = 4};
    config.affinity = affinity;
    Runtime runtime(registry, config);
    EXPECT_EQ(runtime.run(program).block_as<grid::Grid>().rows, expected);
  }
}

TEST(Integration, NumaPenaltyOnThreadedRuntimeStaysCorrect) {
  grid::GridParams gp;
  gp.width = gp.height = 32;
  gp.steps = 2;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  grid::register_grid_operators(registry, gp);
  CompiledProgram program = compile_or_throw(grid::grid_source(gp), registry);
  RuntimeConfig config{.num_workers = 2};
  config.affinity = AffinityMode::kData;
  config.remote_penalty_ns_per_kb = 100;
  Runtime runtime(registry, config);
  EXPECT_EQ(runtime.run(program).block_as<grid::Grid>().rows,
            grid::sequential_run(gp).rows);
}

}  // namespace
}  // namespace delirium
