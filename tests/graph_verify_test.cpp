// Graph verifier tests: a clean compile verifies clean, and every seeded
// corruption — dangling consumer edge, broken slot numbering, data-edge
// cycle, stale priority class, stale recursion flag, registry mismatch,
// pure+destructive contradiction — is reported with a useful message.
#include <gtest/gtest.h>

#include "src/analysis/graph_verify.h"
#include "src/delirium.h"

namespace delirium {
namespace {

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    return reg;
  }();
  return r;
}

// Corruption tests compile unoptimized so constant folding cannot erase
// the operator nodes they mutate.
CompileResult compile(const std::string& text, bool optimize = false) {
  CompileOptions options;
  options.optimize = optimize;
  CompileResult result = compile_source("<test>", text, registry(), options);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  return result;
}

/// All issue messages joined, for substring assertions.
std::string report(const CompiledProgram& program, const AnalysisResult* analysis = nullptr) {
  return verify_report(verify_graphs(program, registry(), analysis));
}

uint32_t find_node(const Template& tmpl, NodeKind kind) {
  for (uint32_t i = 0; i < tmpl.nodes.size(); ++i) {
    if (tmpl.nodes[i].kind == kind) return i;
  }
  ADD_FAILURE() << "node kind not found";
  return 0;
}

TEST(GraphVerify, CleanProgramsVerifyClean) {
  for (const char* source :
       {"main() 1", "main() add(1, 2)", "main() let x = 1 in x",
        "main() if 1 then 2 else 3", "main() <1, 2>",
        "main() iterate { i = 0, incr(i) } while is_not_equal(i, 3), result i",
        "f(n) if less_than(n, 2) then n else add(f(sub(n, 1)), f(sub(n, 2)))\n"
        "main() f(10)"}) {
    for (bool optimize : {false, true}) {
      CompileResult result = compile(source, optimize);
      EXPECT_EQ(report(result.program, &result.analysis), "") << source;
      EXPECT_TRUE(result.verify_issues.empty()) << source;
    }
  }
}

TEST(GraphVerify, DetectsDanglingConsumerEdge) {
  CompileResult result = compile("main() add(1, 2)");
  Template& t = *result.program.templates[result.program.entry];
  t.nodes[find_node(t, NodeKind::kOperator)].consumers.push_back(PortRef{9999, 0});
  const std::string r = report(result.program);
  EXPECT_NE(r.find("out of range"), std::string::npos) << r;
}

TEST(GraphVerify, DetectsDanglingSlotNumbering) {
  CompileResult result = compile("main() add(1, 2)");
  Template& t = *result.program.templates[result.program.entry];
  t.nodes[find_node(t, NodeKind::kOperator)].input_offset += 7;
  const std::string r = report(result.program);
  EXPECT_NE(r.find("dense slot numbering"), std::string::npos) << r;
}

TEST(GraphVerify, DetectsDataEdgeCycle) {
  CompileResult result = compile("main() incr(incr(1))");
  Template& t = *result.program.templates[result.program.entry];
  // Rewire the two incr nodes into a loop: a -> b -> a.
  uint32_t a = 0, b = 0;
  bool found_a = false;
  for (uint32_t i = 0; i < t.nodes.size(); ++i) {
    if (t.nodes[i].kind != NodeKind::kOperator) continue;
    if (!found_a) {
      a = i;
      found_a = true;
    } else {
      b = i;
    }
  }
  ASSERT_NE(a, b);
  // b currently feeds something else; point it back at a's input instead,
  // and detach a's original producer so port (a, 0) still has one producer.
  for (Node& n : t.nodes) {
    std::erase_if(n.consumers, [&](const PortRef& c) { return c.node == a && c.port == 0; });
  }
  t.nodes[b].consumers.assign(1, PortRef{a, 0});
  const std::string r = report(result.program);
  EXPECT_NE(r.find("cycle"), std::string::npos) << r;
}

TEST(GraphVerify, DetectsStalePriorityClass) {
  CompileResult result = compile(
      "f(n) if less_than(n, 2) then n else f(sub(n, 1))\n"
      "main() f(5)");
  // The call to the recursive f must carry kRecursiveCallClosure; demote it.
  bool demoted = false;
  for (auto& tmpl : result.program.templates) {
    for (Node& n : tmpl->nodes) {
      if (n.kind == NodeKind::kCall && n.priority == PriorityClass::kRecursiveCallClosure) {
        n.priority = PriorityClass::kNormal;
        demoted = true;
        break;
      }
    }
    if (demoted) break;
  }
  ASSERT_TRUE(demoted);
  const std::string r = report(result.program);
  EXPECT_NE(r.find("priority"), std::string::npos) << r;
  EXPECT_NE(r.find("stale"), std::string::npos) << r;
}

TEST(GraphVerify, DetectsStaleRecursionFlag) {
  CompileResult result = compile(
      "f(n) if less_than(n, 2) then n else f(sub(n, 1))\n"
      "main() f(5)");
  auto it = result.program.by_name.find("f");
  ASSERT_NE(it, result.program.by_name.end());
  result.program.templates[it->second]->recursive = false;
  const std::string r = report(result.program, &result.analysis);
  EXPECT_NE(r.find("recursion analysis"), std::string::npos) << r;
}

TEST(GraphVerify, DetectsOperatorTableMismatch) {
  CompileResult result = compile("main() add(1, 2)");
  Template& t = *result.program.templates[result.program.entry];
  t.nodes[find_node(t, NodeKind::kOperator)].op_index += 1;
  const std::string r = report(result.program);
  EXPECT_NE(r.find("disagrees with the table"), std::string::npos) << r;
}

TEST(GraphVerify, DetectsReturnNodeCorruption) {
  CompileResult result = compile("main() add(1, 2)");
  Template& t = *result.program.templates[result.program.entry];
  t.return_node = find_node(t, NodeKind::kOperator);
  const std::string r = report(result.program);
  EXPECT_NE(r.find("not a kReturn"), std::string::npos) << r;
}

TEST(GraphVerify, DetectsCallArityMismatch) {
  CompileResult result = compile("f(x) x\nmain() f(1)");
  auto it = result.program.by_name.find("f");
  ASSERT_NE(it, result.program.by_name.end());
  result.program.templates[it->second]->num_params = 2;
  const std::string r = report(result.program);
  EXPECT_NE(r.find("takes 2"), std::string::npos) << r;
}

// A forged table whose single operator claims both purity and write
// access — OperatorRegistry::add rejects this at registration, so the
// verifier's cross-check needs a hand-built table to exercise it.
class ContradictoryTable final : public OperatorTable {
 public:
  ContradictoryTable() {
    info_.name = "mutate";
    info_.arity = 1;
    info_.pure = true;
    info_.destructive = {true};
  }
  const OperatorInfo* lookup(const std::string& name) const override {
    return name == "mutate" ? &info_ : nullptr;
  }
  int index_of(const std::string& name) const override { return name == "mutate" ? 0 : -1; }

 private:
  OperatorInfo info_;
};

TEST(GraphVerify, DetectsPureDestructiveContradiction) {
  ContradictoryTable table;
  CompileResult result = compile_source("<test>", "main() mutate(1)", table);
  if (result.ok) {
    const std::string r = verify_report(verify_graphs(result.program, table));
    EXPECT_NE(r.find("both pure and destructive"), std::string::npos) << r;
  } else {
    // Debug builds auto-run the verifier inside compile() and surface the
    // defect as a compile error before we ever see the program.
    EXPECT_NE(result.diagnostics.find("both pure and destructive"), std::string::npos)
        << result.diagnostics;
  }
}

TEST(GraphVerify, CompileVerifyOptionReportsCorruptionsAsErrors) {
  // compile() with options.verify runs the verifier on the freshly-built
  // graphs; a well-formed program sails through with no issues.
  CompileOptions options;
  options.verify = true;
  CompileResult result = compile_source("<test>", "main() add(1, 2)", registry(), options);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  EXPECT_TRUE(result.verify_issues.empty());
}

}  // namespace
}  // namespace delirium
