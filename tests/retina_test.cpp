// Case study #1 tests: the Delirium-coordinated retina model must be
// bitwise identical to the sequential reference, for both coordination
// versions, at every worker count — the determinism guarantee of §8.
#include <gtest/gtest.h>

#include "src/apps/retina/retina_ops.h"
#include "src/delirium.h"

namespace delirium::retina {
namespace {

RetinaParams small_params() {
  RetinaParams p;
  p.width = 64;
  p.height = 64;
  p.num_targets = 12;
  p.num_iter = 3;
  p.seed = 7;
  return p;
}

TEST(RetinaModel, SequentialRunIsDeterministic) {
  const RetinaParams p = small_params();
  const double a = checksum(sequential_run(p));
  const double b = checksum(sequential_run(p));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0.0);
}

TEST(RetinaModel, ChecksumChangesWithSeed) {
  RetinaParams p = small_params();
  const double a = checksum(sequential_run(p));
  p.seed = 8;
  const double b = checksum(sequential_run(p));
  EXPECT_NE(a, b);
}

TEST(RetinaModel, TimestepAdvances) {
  const RetinaParams p = small_params();
  EXPECT_EQ(sequential_run(p).timestep, p.num_iter);
}

TEST(RetinaModel, TargetsBounceInsideBounds) {
  RetinaParams p = small_params();
  p.num_iter = 50;
  const RetinaModel m = sequential_run(p);
  for (const Target& t : m.targets) {
    EXPECT_GE(t.x, 0.0f);
    EXPECT_LT(t.x, static_cast<float>(p.width) + 2.0f);
    EXPECT_GE(t.y, 0.0f);
    EXPECT_LT(t.y, static_cast<float>(p.height) + 2.0f);
  }
}

TEST(RetinaModel, KernelIsNormalized) {
  float total = 0;
  for (const auto& row : kernel()) {
    for (float w : row) total += w;
  }
  EXPECT_NEAR(total, 1.0f, 1e-4f);
}

class RetinaParallel : public ::testing::TestWithParam<std::tuple<RetinaVersion, int>> {};

TEST_P(RetinaParallel, MatchesSequentialBitwise) {
  const auto [version, workers] = GetParam();
  const RetinaParams p = small_params();

  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_retina_operators(registry, p);

  Runtime runtime(registry, {.num_workers = workers});
  const RetinaModel parallel = delirium_run(p, version, runtime);
  const RetinaModel sequential = sequential_run(p);

  EXPECT_EQ(parallel.timestep, sequential.timestep);
  // Bitwise: identical arithmetic in identical order, per quarter.
  for (int q = 0; q < kQuarters; ++q) {
    EXPECT_EQ(parallel.accum[q], sequential.accum[q]) << "quarter " << q;
    EXPECT_EQ(parallel.bipolar[q], sequential.bipolar[q]) << "quarter " << q;
    EXPECT_EQ(parallel.motion[q], sequential.motion[q]) << "quarter " << q;
  }
  EXPECT_EQ(checksum(parallel), checksum(sequential));
}

std::string retina_param_name(
    const ::testing::TestParamInfo<std::tuple<RetinaVersion, int>>& info) {
  const RetinaVersion version = std::get<0>(info.param);
  const int workers = std::get<1>(info.param);
  return std::string(version == RetinaVersion::kV1Imbalanced ? "V1" : "V2") + "Workers" +
         std::to_string(workers);
}

INSTANTIATE_TEST_SUITE_P(
    AllVersionsAndWorkerCounts, RetinaParallel,
    ::testing::Combine(::testing::Values(RetinaVersion::kV1Imbalanced,
                                         RetinaVersion::kV2Balanced),
                       ::testing::Values(1, 2, 3, 4, 8)),
    retina_param_name);

TEST(RetinaParallelProperties, NoCopyOnWriteCopies) {
  // The coordination splits data so every destructive operator holds the
  // sole reference: the run must trigger zero CoW block copies.
  const RetinaParams p = small_params();
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_retina_operators(registry, p);
  Runtime runtime(registry, {.num_workers = 4});
  delirium_run(p, RetinaVersion::kV2Balanced, runtime);
  EXPECT_EQ(runtime.last_stats().cow_copies, 0u);
}

TEST(RetinaParallelProperties, NodeTimingsNameTheOperators) {
  const RetinaParams p = small_params();
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_retina_operators(registry, p);
  RuntimeConfig config{.num_workers = 2};
  config.enable_node_timing = true;
  Runtime runtime(registry, config);
  delirium_run(p, RetinaVersion::kV1Imbalanced, runtime);

  int convol_bites = 0;
  int post_ups = 0;
  for (const NodeTiming& t : runtime.node_timings()) {
    if (t.label == "convol_bite") ++convol_bites;
    if (t.label == "post_up") ++post_ups;
  }
  EXPECT_EQ(convol_bites, p.num_iter * kKernelSize * kQuarters);
  EXPECT_EQ(post_ups, p.num_iter * kKernelSize);
}

}  // namespace
}  // namespace delirium::retina
