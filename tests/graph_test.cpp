// Graph conversion unit tests: structural validity, node classification,
// tail marking, closure capture wiring, and DOT export.
#include <gtest/gtest.h>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"

namespace delirium {
namespace {

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    return reg;
  }();
  return r;
}

CompiledProgram compile(const std::string& text, bool optimize = false) {
  CompileOptions options;
  options.optimize = optimize;
  return compile_or_throw(text, registry(), options);
}

const Node* find_node(const Template& tmpl, NodeKind kind) {
  for (const Node& n : tmpl.nodes) {
    if (n.kind == kind) return &n;
  }
  return nullptr;
}

int count_nodes(const Template& tmpl, NodeKind kind) {
  int count = 0;
  for (const Node& n : tmpl.nodes) count += n.kind == kind ? 1 : 0;
  return count;
}

TEST(Graph, ValidatesSimplePrograms) {
  for (const char* source :
       {"main() 1", "main() add(1, 2)", "main() let x = 1 in x",
        "main() if 1 then 2 else 3", "main() <1, 2>",
        "main() iterate { i = 0, incr(i) } while 0, result i"}) {
    CompiledProgram program = compile(source);
    EXPECT_EQ(validate_graph(program), "") << source;
  }
}

TEST(Graph, OperatorNodeCarriesRegistryIndex) {
  CompiledProgram program = compile("main() add(1, 2)");
  const Node* op = find_node(program.entry_template(), NodeKind::kOperator);
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->op_index, registry().index_of("add"));
  EXPECT_EQ(op->op_name, "add");
  EXPECT_EQ(op->num_inputs, 2);
}

TEST(Graph, DirectCallTargetsFunctionTemplate) {
  CompiledProgram program = compile("f(x) x\nmain() f(1)");
  const Node* call = find_node(program.entry_template(), NodeKind::kCall);
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(program.templates[call->target_template]->name, "f");
  EXPECT_EQ(call->priority, PriorityClass::kCallClosure);
}

TEST(Graph, RecursiveCallsGetLowestPriority) {
  CompiledProgram program = compile("f(n) if n then f(decr(n)) else 0\nmain() f(3)");
  // main's call to the recursive f.
  const Node* call = find_node(program.entry_template(), NodeKind::kCall);
  ASSERT_NE(call, nullptr);
  EXPECT_EQ(call->priority, PriorityClass::kRecursiveCallClosure);
  EXPECT_TRUE(program.find("f")->recursive);
}

TEST(Graph, TailPositionsAreMarked) {
  CompiledProgram program = compile("f(x) x\nmain() f(1)");
  const Node* call = find_node(program.entry_template(), NodeKind::kCall);
  ASSERT_NE(call, nullptr);
  EXPECT_TRUE(call->is_tail);
}

TEST(Graph, NonTailCallsAreNotMarked) {
  CompiledProgram program = compile("f(x) x\nmain() incr(f(1))");
  const Node* call = find_node(program.entry_template(), NodeKind::kCall);
  ASSERT_NE(call, nullptr);
  EXPECT_FALSE(call->is_tail);
}

TEST(Graph, ConditionalBuildsTwoBranchTemplates) {
  CompiledProgram program = compile("main() if 1 then 2 else 3");
  // main + then-branch + else-branch.
  EXPECT_EQ(program.templates.size(), 3u);
  EXPECT_EQ(count_nodes(program.entry_template(), NodeKind::kMakeClosure), 2);
  EXPECT_EQ(count_nodes(program.entry_template(), NodeKind::kIfDispatch), 1);
}

TEST(Graph, BranchesCaptureOnlyFreeVariables) {
  CompiledProgram program = compile(R"(
main()
  let a = 1
      b = 2
      c = 3
  in if a then b else 0
)");
  // then-branch captures b only; else-branch captures nothing.
  const Template& main_tmpl = program.entry_template();
  std::vector<const Node*> closures;
  for (const Node& n : main_tmpl.nodes) {
    if (n.kind == NodeKind::kMakeClosure) closures.push_back(&n);
  }
  ASSERT_EQ(closures.size(), 2u);
  EXPECT_EQ(closures[0]->num_inputs + closures[1]->num_inputs, 1);
}

TEST(Graph, IterateBuildsLoopStepAndDoneTemplates) {
  CompiledProgram program = compile("main() iterate { i = 0, incr(i) } while 0, result i");
  // main + loop + step + done.
  EXPECT_EQ(program.templates.size(), 4u);
  bool found_recursive_loop = false;
  for (const auto& t : program.templates) {
    if (t->name.find("$loop") != std::string::npos && t->recursive) {
      found_recursive_loop = true;
    }
  }
  EXPECT_TRUE(found_recursive_loop);
}

TEST(Graph, LoopCapturesEnclosingBindings) {
  CompiledProgram program = compile(R"(
main()
  let stride = 3
  in iterate { i = 0, add(i, stride) } while less_than(i, 9), result i
)");
  EXPECT_EQ(validate_graph(program), "");
  // The loop template takes the loop var plus the captured stride.
  const Template* loop = nullptr;
  for (const auto& t : program.templates) {
    // The loop template itself, not its $step / $done sub-templates.
    if (t->name.find("$loop") != std::string::npos &&
        t->name.find("$step") == std::string::npos &&
        t->name.find("$done") == std::string::npos) {
      loop = t.get();
    }
  }
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->num_params, 2u);
  EXPECT_EQ(loop->num_captures, 1u);
}

TEST(Graph, GlobalFunctionAsValueBecomesClosure) {
  CompiledProgram program = compile("bump(x) incr(x)\napply(f) f(1)\nmain() apply(bump)");
  const Node* clo = find_node(program.entry_template(), NodeKind::kMakeClosure);
  ASSERT_NE(clo, nullptr);
  EXPECT_EQ(program.templates[clo->target_template]->name, "bump");
  EXPECT_EQ(clo->num_inputs, 0);  // no captures
  // apply calls through the closure value.
  const Template* apply = program.find("apply");
  ASSERT_NE(apply, nullptr);
  EXPECT_NE(find_node(*apply, NodeKind::kCallClosure), nullptr);
}

TEST(Graph, DecomposeBuildsTupleGets) {
  CompiledProgram program = compile("main() let <a, b, c> = <1, 2, 3> in b");
  EXPECT_EQ(count_nodes(program.entry_template(), NodeKind::kTupleGet), 3);
  EXPECT_EQ(count_nodes(program.entry_template(), NodeKind::kTupleMake), 1);
}

TEST(Graph, SlotLayoutIsDense) {
  CompiledProgram program = compile("main() add(mul(1, 2), sub(3, 4))");
  const Template& tmpl = program.entry_template();
  uint32_t total = 0;
  for (const Node& n : tmpl.nodes) total += n.num_inputs;
  EXPECT_EQ(tmpl.value_slots, total);
}

TEST(Graph, GeneratedProgramsAllValidate) {
  for (uint64_t seed : {21ull, 22ull, 23ull, 24ull, 25ull}) {
    dcc::GenParams params;
    params.num_functions = 25;
    params.seed = seed;
    const std::string source = dcc::generate_program(params);
    CompiledProgram plain = compile(source, /*optimize=*/false);
    CompiledProgram optimized = compile(source, /*optimize=*/true);
    EXPECT_EQ(validate_graph(plain), "") << "seed " << seed;
    EXPECT_EQ(validate_graph(optimized), "") << "seed " << seed;
    // Optimization may only shrink the graph.
    EXPECT_LE(optimized.total_nodes(), plain.total_nodes()) << "seed " << seed;
  }
}

TEST(Graph, DotExportMentionsTemplatesAndEdges) {
  CompiledProgram program = compile("f(x) incr(x)\nmain() f(41)");
  const std::string dot = program_to_dot(program);
  EXPECT_NE(dot.find("digraph delirium"), std::string::npos);
  EXPECT_NE(dot.find("main"), std::string::npos);
  EXPECT_NE(dot.find("subgraph cluster_"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("incr"), std::string::npos);
}

TEST(Graph, EntryPointIsMain) {
  CompiledProgram program = compile("helper() 1\nmain() helper()");
  EXPECT_EQ(program.entry_template().name, "main");
}

}  // namespace
}  // namespace delirium
