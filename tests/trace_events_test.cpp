// Trace-event subsystem tests (docs/OBSERVABILITY.md): stream shape,
// Chrome JSON export validity, sim-vs-threaded agreement on the
// executor-independent event projection, ring overflow accounting, the
// RunStats reset-between-runs contract, and the metrics golden file.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/runtime/fault.h"
#include "src/runtime/sim.h"
#include "src/tools/metrics.h"
#include "src/tools/trace.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ScopedEnv;
using tools::deterministic_event_multiset;

// Every env knob the tracer or the runs below honor, so the suite stays
// hermetic under CI jobs that export them.
ScopedEnv hermetic_env() {
  return ScopedEnv({"DELIRIUM_TRACE", "DELIRIUM_TRACE_CAPACITY", "DELIRIUM_SCHEDULER",
                    "DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
}

const char* kFanProgram = R"(
  step(x) mul(add(x, 1), 2)
  leaf(x) step(step(x))
  main() add(add(leaf(1), leaf(2)), add(leaf(3), leaf(4)))
)";

// All-constant programs would otherwise fold away at compile time,
// leaving nothing for the tracer to record.
CompiledProgram compile_unoptimized(const std::string& source,
                                    const OperatorRegistry& reg) {
  CompileOptions copts;
  copts.optimize = false;
  return compile_or_throw(source, reg, copts);
}

std::vector<TraceEvent> threaded_trace(const CompiledProgram& program,
                                       const OperatorRegistry& reg, int workers,
                                       RuntimeConfig config = {}) {
  config.num_workers = workers;
  config.enable_tracing = true;
  Runtime runtime(reg, config);
  runtime.run(program);
  EXPECT_EQ(runtime.trace_events_overwritten(), 0u);
  return runtime.trace_events();
}

// ---------------------------------------------------------------------------
// Stream shape
// ---------------------------------------------------------------------------

TEST(TraceEvents, StreamIsSeqSortedWithUniqueSeqs) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  const std::vector<TraceEvent> events = threaded_trace(program, *reg, 4);
  ASSERT_FALSE(events.empty());
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq) << "at " << i;
  }
}

TEST(TraceEvents, OpBeginEndWellNestedPerWorker) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  const std::vector<TraceEvent> events = threaded_trace(program, *reg, 4);

  // Workers execute one operator at a time: per worker, in seq order,
  // every kOpEnd must close the immediately preceding open kOpBegin with
  // the same operator, and depth never exceeds one.
  std::map<int, std::vector<const TraceEvent*>> open;  // worker -> stack
  size_t begins = 0;
  size_t ends = 0;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEventKind::kOpBegin) {
      ++begins;
      auto& stack = open[e.worker];
      EXPECT_TRUE(stack.empty()) << "nested operator on worker " << e.worker;
      stack.push_back(&e);
    } else if (e.kind == TraceEventKind::kOpEnd) {
      ++ends;
      auto& stack = open[e.worker];
      ASSERT_FALSE(stack.empty()) << "unmatched kOpEnd on worker " << e.worker;
      EXPECT_EQ(stack.back()->op, e.op);
      EXPECT_EQ(stack.back()->arg, e.arg);  // same attempt
      EXPECT_LE(stack.back()->ts, e.ts);
      stack.pop_back();
    }
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  for (const auto& [worker, stack] : open) {
    EXPECT_TRUE(stack.empty()) << "dangling kOpBegin on worker " << worker;
  }
}

TEST(TraceEvents, SimTimestampsAreExactVirtualTime) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  SimConfig config;
  config.num_procs = 2;
  config.enable_tracing = true;
  SimRuntime sim(*reg, config);
  const SimResult r = sim.run(program);
  ASSERT_FALSE(r.trace_events.empty());
  for (const TraceEvent& e : r.trace_events) {
    EXPECT_GE(e.ts, 0);
    EXPECT_LE(e.ts, r.makespan);
  }
  // The accessor mirrors the result for a successful run.
  EXPECT_EQ(sim.trace_events().size(), r.trace_events.size());
}

// ---------------------------------------------------------------------------
// Chrome JSON export
// ---------------------------------------------------------------------------

// Minimal structural JSON check: strings (with escapes) are skipped, and
// bracket/brace nesting must balance to zero exactly at the end.
void expect_balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

TEST(TraceEvents, ChromeExportIsBalancedAndNamesRows) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  const std::vector<TraceEvent> events = threaded_trace(program, *reg, 3);

  std::ostringstream os;
  tools::write_trace_events(os, events, *reg);
  const std::string json = os.str();
  expect_balanced_json(json);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);  // thread_name rows
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);  // operator slices
  EXPECT_NE(json.find("worker 0"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"add\""), std::string::npos);
}

TEST(TraceEvents, ChromeExportOfEmptyStreamIsValid) {
  auto reg = testing::builtin_registry();
  std::ostringstream os;
  tools::write_trace_events(os, {}, *reg);
  expect_balanced_json(os.str());
}

// ---------------------------------------------------------------------------
// Sim vs threaded: the executor-independent projection agrees
// ---------------------------------------------------------------------------

std::vector<std::string> sim_multiset(const CompiledProgram& program,
                                      const OperatorRegistry& reg, int procs,
                                      SimConfig config = {}) {
  config.num_procs = procs;
  config.enable_tracing = true;
  SimRuntime sim(reg, config);
  const SimResult r = sim.run(program);
  return deterministic_event_multiset(r.trace_events, reg);
}

TEST(TraceEvents, SimAndThreadedAgreeOnCleanRun) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);

  const std::vector<std::string> sim3 = sim_multiset(program, *reg, 3);
  ASSERT_FALSE(sim3.empty());
  EXPECT_EQ(sim3, sim_multiset(program, *reg, 1));

  for (int workers : {1, 4}) {
    const std::vector<std::string> threaded =
        deterministic_event_multiset(threaded_trace(program, *reg, workers), *reg);
    EXPECT_EQ(sim3, threaded) << "workers=" << workers;
  }
  RuntimeConfig global_lock;
  global_lock.scheduler = SchedulerKind::kGlobalLock;
  EXPECT_EQ(sim3, deterministic_event_multiset(
                      threaded_trace(program, *reg, 2, global_lock), *reg));
}

TEST(TraceEvents, SimAndThreadedAgreeUnderInjectedFaultsWithRetries) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  // A structural (`every=`) injection plan fires on the same activations
  // in every executor; fail_attempts=1 plus retries lets the run finish,
  // so the multisets carry kFaultRaise and kRetry entries on both sides.
  reg->set_fault_plan(
      std::make_shared<const FaultPlan>(FaultPlan::parse("add:throw:every=3:seed=7:"
                                                         "fail_attempts=1")));
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);

  SimConfig sim_config;
  sim_config.max_retries = 2;
  const std::vector<std::string> sim = sim_multiset(program, *reg, 2, sim_config);
  // A retried-and-recovered fault records kRetry only; kFaultRaise marks
  // a fault captured for drain (retries exhausted or ineligible).
  const bool has_retry = std::any_of(sim.begin(), sim.end(), [](const std::string& s) {
    return s.find("retry") != std::string::npos;
  });
  EXPECT_TRUE(has_retry);

  RuntimeConfig config;
  config.max_retries = 2;
  const std::vector<std::string> threaded =
      deterministic_event_multiset(threaded_trace(program, *reg, 4, config), *reg);
  EXPECT_EQ(sim, threaded);
}

TEST(TraceEvents, FaultingRunTraceSurvivesOnBothExecutors) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  reg->add("boom", 1, [](OpContext&) -> Value { throw RuntimeError("kaput"); }).pure();
  CompiledProgram program = compile_unoptimized("main() boom(1)", *reg);

  RuntimeConfig config;
  config.num_workers = 2;
  config.enable_tracing = true;
  Runtime runtime(*reg, config);
  EXPECT_THROW(runtime.run(program), FaultError);
  const std::vector<std::string> threaded =
      deterministic_event_multiset(runtime.trace_events(), *reg);

  SimConfig sim_config;
  sim_config.num_procs = 2;
  sim_config.enable_tracing = true;
  SimRuntime sim(*reg, sim_config);
  EXPECT_THROW(sim.run(program), FaultError);
  const std::vector<std::string> simulated =
      deterministic_event_multiset(sim.trace_events(), *reg);

  ASSERT_FALSE(threaded.empty());
  EXPECT_EQ(threaded, simulated);
  const bool has_fault =
      std::any_of(threaded.begin(), threaded.end(), [](const std::string& s) {
        return s.find("fault_raise op=boom") != std::string::npos;
      });
  EXPECT_TRUE(has_fault);
}

// ---------------------------------------------------------------------------
// Ring overflow
// ---------------------------------------------------------------------------

TEST(TraceEvents, TinyRingOverflowIsCountedNotFatal) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(R"(
    reduce(i, acc)
      if less_than(i, 200)
        then reduce(add(i, 1), add(acc, mul(i, 2)))
        else acc
    main() reduce(1, 0)
  )",
                                                *reg);
  RuntimeConfig config;
  config.num_workers = 2;
  config.enable_tracing = true;
  config.trace_capacity = 16;  // minimum ring size
  Runtime runtime(*reg, config);
  runtime.run(program);
  EXPECT_GT(runtime.trace_events_overwritten(), 0u);
  // Each surviving ring holds at most its capacity.
  EXPECT_LE(runtime.trace_events().size(), size_t{16} * 3);  // 2 workers + caller
  // Survivors are still seq-sorted.
  const auto& events = runtime.trace_events();
  for (size_t i = 1; i < events.size(); ++i) EXPECT_LT(events[i - 1].seq, events[i].seq);
}

TEST(TraceEvents, EnvKillSwitchDisablesConfiguredTracing) {
  ScopedEnv env = hermetic_env();
  env.set("DELIRIUM_TRACE", "0");
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  RuntimeConfig config;
  config.num_workers = 2;
  config.enable_tracing = true;  // env wins
  Runtime runtime(*reg, config);
  runtime.run(program);
  EXPECT_TRUE(runtime.trace_events().empty());

  SimConfig sim_config;
  sim_config.num_procs = 2;
  sim_config.enable_tracing = true;
  SimRuntime sim(*reg, sim_config);
  EXPECT_TRUE(sim.run(program).trace_events.empty());
}

TEST(TraceEvents, EnvEnablesTracingWithoutConfig) {
  ScopedEnv env = hermetic_env();
  env.set("DELIRIUM_TRACE", "1");
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  Runtime runtime(*reg, RuntimeConfig{});
  runtime.run(program);
  EXPECT_FALSE(runtime.trace_events().empty());
}

// ---------------------------------------------------------------------------
// RunStats reset between runs (regression: counters must not accumulate)
// ---------------------------------------------------------------------------

TEST(StatsReset, BackToBackRunsReportIdenticalCounters) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  RuntimeConfig config;
  config.num_workers = 2;
  Runtime runtime(*reg, config);

  runtime.run(program);
  const uint64_t nodes = runtime.last_stats().nodes_executed;
  const uint64_t invocations = runtime.last_stats().operator_invocations;
  const uint64_t activations = runtime.last_stats().activations_created;
  ASSERT_GT(nodes, 0u);

  for (int i = 0; i < 3; ++i) {
    runtime.run(program);
    EXPECT_EQ(runtime.last_stats().nodes_executed, nodes) << "run " << i;
    EXPECT_EQ(runtime.last_stats().operator_invocations, invocations) << "run " << i;
    EXPECT_EQ(runtime.last_stats().activations_created, activations) << "run " << i;
  }
}

TEST(StatsReset, TraceAndTimingsResetBetweenRuns) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  RuntimeConfig config;
  config.num_workers = 2;
  config.enable_tracing = true;
  config.enable_node_timing = true;
  Runtime runtime(*reg, config);

  runtime.run(program);
  // Raw stream size varies run-to-run (steal/park events depend on the
  // schedule); the deterministic projection and the timing count do not.
  const std::vector<std::string> first =
      deterministic_event_multiset(runtime.trace_events(), *reg);
  const size_t timing_size = runtime.node_timings().size();
  ASSERT_FALSE(first.empty());
  runtime.run(program);
  EXPECT_EQ(deterministic_event_multiset(runtime.trace_events(), *reg), first);
  EXPECT_EQ(runtime.node_timings().size(), timing_size);
}

TEST(StatsReset, FaultedRunDoesNotLeakIntoNextRun) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  reg->add("boom", 1, [](OpContext&) -> Value { throw RuntimeError("kaput"); }).pure();
  CompiledProgram faulty = compile_unoptimized("main() boom(1)", *reg);
  CompiledProgram clean = compile_unoptimized("main() add(1, 2)", *reg);

  RuntimeConfig config;
  config.num_workers = 2;
  Runtime runtime(*reg, config);
  EXPECT_THROW(runtime.run(faulty), FaultError);
  EXPECT_GT(runtime.last_stats().faults_raised, 0u);

  runtime.run(clean);
  EXPECT_EQ(runtime.last_stats().faults_raised, 0u);
  EXPECT_EQ(runtime.last_stats().items_purged, 0u);
  EXPECT_EQ(runtime.last_stats().retries, 0u);
}

TEST(StatsReset, FailedLookupStillResetsStats) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  RuntimeConfig config;
  config.num_workers = 2;
  Runtime runtime(*reg, config);
  runtime.run(program);
  ASSERT_GT(runtime.last_stats().nodes_executed, 0u);
  // A run that throws before any node executes must not leave the
  // previous run's counters visible.
  EXPECT_ANY_THROW(runtime.run_function(program, "no_such_function", {}));
  EXPECT_EQ(runtime.last_stats().nodes_executed, 0u);
}

TEST(StatsReset, SimBackToBackRunsReportIdenticalCounters) {
  ScopedEnv env = hermetic_env();
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_unoptimized(kFanProgram, *reg);
  SimConfig config;
  config.num_procs = 2;
  SimRuntime sim(*reg, config);
  // Makespan rests on measured wall-clock operator costs, so only the
  // structural counters are comparable across runs.
  const SimResult first = sim.run(program);
  const SimResult second = sim.run(program);
  EXPECT_EQ(first.stats.nodes_executed, second.stats.nodes_executed);
  EXPECT_EQ(first.stats.activations_created, second.stats.activations_created);
  EXPECT_EQ(first.stats.sched_local_enqueues, second.stats.sched_local_enqueues);
}

// ---------------------------------------------------------------------------
// Metrics: histogram unit behavior and the golden JSON file
// ---------------------------------------------------------------------------

TEST(Metrics, LogHistogramDeterministicPercentiles) {
  tools::LogHistogram h;
  EXPECT_EQ(h.percentile(0.5), 0);
  for (int64_t v : {1, 2, 3, 100, 1000}) h.observe(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.total(), 1106);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 1000);
  // rank ceil(0.5*5)=3 -> value 3 -> bucket bit_width(3)=2 -> 2^2-1.
  EXPECT_EQ(h.percentile(0.5), 3);
  // rank 5 -> value 1000 -> bucket bit_width(1000)=10 -> 1023.
  EXPECT_EQ(h.percentile(0.99), 1023);
}

RunStats golden_stats() {
  RunStats s;
  s.activations_created = 7;
  s.peak_live_activations = 3;
  s.nodes_executed = 42;
  s.operator_invocations = 12;
  s.operator_ticks = 48000;
  s.cow_copies = 2;
  s.cow_skipped = 5;
  s.sched_local_enqueues = 30;
  s.sched_injected_enqueues = 4;
  s.sched_steals = 3;
  s.sched_failed_steals = 9;
  s.sched_parks = 2;
  s.sched_wakeups = 2;
  s.sched_hint_promotions = 6;
  s.faults_raised = 1;
  s.faults_injected = 1;
  s.retries = 1;
  return s;
}

std::vector<NodeTiming> golden_timings() {
  return {
      {"convolve", "main", 1500, 0, 0, 100},
      {"convolve", "main", 2500, 1, 1, 400},
      {"post_up", "main", 300, 0, 2, 2100},
  };
}

TEST(Metrics, GoldenJson) {
  tools::MetricsRegistry m;
  m.observe_run(golden_stats(), golden_timings());
  std::ostringstream os;
  m.to_json(os);

  std::ifstream golden(std::string(DELIRIUM_GOLDEN_DIR) + "/metrics.json");
  ASSERT_TRUE(golden.good()) << "missing tests/golden/metrics.json";
  std::ostringstream want;
  want << golden.rdbuf();
  EXPECT_EQ(os.str(), want.str());
  expect_balanced_json(os.str());
}

TEST(Metrics, PrometheusShape) {
  tools::MetricsRegistry m;
  m.observe_run(golden_stats(), golden_timings());
  m.observe_run(golden_stats(), golden_timings());  // counters sum, peak maxes
  std::ostringstream os;
  m.to_prometheus(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("delirium_runs_total 2\n"), std::string::npos);
  EXPECT_NE(text.find("delirium_nodes_executed 84\n"), std::string::npos);
  EXPECT_NE(text.find("delirium_peak_live_activations 3\n"), std::string::npos);
  EXPECT_NE(text.find("delirium_operator_duration_ns{operator=\"convolve\",quantile="
                      "\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("delirium_operator_duration_ns_count{operator=\"post_up\"} 2\n"),
            std::string::npos);
  // Every line is a comment or `name[{labels}] value`.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_EQ(line.rfind("delirium_", 0), 0u) << line;
  }
}

}  // namespace
}  // namespace delirium
