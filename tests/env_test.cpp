// Unified DELIRIUM_* environment parsing (src/support/env.h): every
// knob shares one contract — unset (or empty) falls back to the
// caller's default, a well-formed value overrides it, and a malformed
// value throws EnvError naming the variable and quoting the offending
// text. The end-to-end cases pin the motivating bug: a typo like
// DELIRIUM_SCHEDULER=work-stealing must fail loudly, not silently
// benchmark the wrong scheduler.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "src/support/env.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ScopedEnv;

constexpr const char* kVar = "DELIRIUM_ENV_TEST_KNOB";

/// Expect `fn` to throw EnvError whose message names the variable and
/// quotes the offending value.
template <typename Fn>
void expect_env_error(Fn&& fn, const std::string& value) {
  try {
    fn();
    FAIL() << "expected EnvError for value '" << value << "'";
  } catch (const EnvError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(kVar), std::string::npos) << what;
    EXPECT_NE(what.find(value), std::string::npos) << what;
  }
}

TEST(EnvRaw, UnsetAndEmptyAreBothAbsent) {
  ScopedEnv env({kVar});
  EXPECT_FALSE(env_raw(kVar).has_value());
  // `DELIRIUM_X= ./prog` is the idiomatic way to neutralize a knob
  // exported earlier in a script, so empty means unset.
  env.set(kVar, "");
  EXPECT_FALSE(env_raw(kVar).has_value());
  env.set(kVar, "value");
  ASSERT_TRUE(env_raw(kVar).has_value());
  EXPECT_EQ(*env_raw(kVar), "value");
}

TEST(EnvFlag, AcceptsDocumentedSpellingsOnly) {
  ScopedEnv env({kVar});
  EXPECT_TRUE(env_flag(kVar, true));    // unset -> fallback
  EXPECT_FALSE(env_flag(kVar, false));  // either fallback
  for (const char* off : {"0", "false", "off"}) {
    env.set(kVar, off);
    EXPECT_FALSE(env_flag(kVar, true)) << off;
  }
  for (const char* on : {"1", "true", "on"}) {
    env.set(kVar, on);
    EXPECT_TRUE(env_flag(kVar, false)) << on;
  }
  // Case-sensitive, matching the documented forms; no yes/no aliases.
  for (const char* bad : {"2", "ON", "True", "yes", "no", " 1"}) {
    env.set(kVar, bad);
    expect_env_error([&] { env_flag(kVar, true); }, bad);
  }
}

TEST(EnvInt, ParsesInFullAndChecksRange) {
  ScopedEnv env({kVar});
  EXPECT_EQ(env_int(kVar, 42), 42);  // unset -> fallback
  env.set(kVar, "17");
  EXPECT_EQ(env_int(kVar, 42), 17);
  env.set(kVar, "-3");
  EXPECT_EQ(env_int(kVar, 42), -3);
  // No silently-ignored trailing text (the strtoll failure mode).
  for (const char* bad : {"17x", "0x10", "1.5", "", "ten", "1 "}) {
    env.set(kVar, bad);
    if (*bad == '\0') {
      EXPECT_EQ(env_int(kVar, 42), 42);  // empty = unset
    } else {
      expect_env_error([&] { env_int(kVar, 42); }, bad);
    }
  }
  env.set(kVar, "99");
  EXPECT_EQ(env_int(kVar, 0, 1, 99), 99);
  expect_env_error([&] { env_int(kVar, 0, 1, 98); }, "99");
  env.set(kVar, "0");
  expect_env_error([&] { env_int(kVar, 1, 1, 98); }, "0");
}

TEST(EnvChoice, ReturnsIndexAndListsSpellingsOnError) {
  ScopedEnv env({kVar});
  EXPECT_EQ(env_choice(kVar, {"alpha", "beta"}, 1u), 1u);  // unset -> fallback
  env.set(kVar, "alpha");
  EXPECT_EQ(env_choice(kVar, {"alpha", "beta"}, 1u), 0u);
  env.set(kVar, "beta");
  EXPECT_EQ(env_choice(kVar, {"alpha", "beta"}, 0u), 1u);
  env.set(kVar, "gamma");
  try {
    env_choice(kVar, {"alpha", "beta"}, 0u);
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(kVar), std::string::npos) << what;
    EXPECT_NE(what.find("'gamma'"), std::string::npos) << what;
    EXPECT_NE(what.find("alpha, beta"), std::string::npos) << what;
  }
}

// ---------------------------------------------------------------------------
// End to end: the knobs consume the shared helpers
// ---------------------------------------------------------------------------

TEST(EnvKnobs, SchedulerTypoFailsLoudlyAtConstruction) {
  ScopedEnv env({"DELIRIUM_SCHEDULER"});
  auto reg = testing::builtin_registry();
  env.set("DELIRIUM_SCHEDULER", "work-stealing");  // the motivating typo
  try {
    Runtime runtime(*reg, {.num_workers = 1});
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DELIRIUM_SCHEDULER"), std::string::npos) << what;
    EXPECT_NE(what.find("'work-stealing'"), std::string::npos) << what;
    EXPECT_NE(what.find("work_stealing"), std::string::npos) << what;
  }
  env.set("DELIRIUM_SCHEDULER", "global_lock");
  Runtime runtime(*reg, {.num_workers = 1});
  EXPECT_EQ(runtime.config().scheduler, SchedulerKind::kGlobalLock);
}

TEST(EnvKnobs, TraceFlagRejectsGarbage) {
  ScopedEnv env({"DELIRIUM_TRACE"});
  auto reg = testing::builtin_registry();
  env.set("DELIRIUM_TRACE", "maybe");
  try {
    Runtime runtime(*reg, {.num_workers = 1});
    FAIL() << "expected EnvError";
  } catch (const EnvError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DELIRIUM_TRACE"), std::string::npos) << what;
    EXPECT_NE(what.find("'maybe'"), std::string::npos) << what;
  }
}

TEST(EnvKnobs, RetriesOverrideParsesViaSharedHelper) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("flaky", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); }).pure();
  reg->set_fault_plan(std::make_shared<const FaultPlan>(
      FaultPlan::parse("flaky:throw:fail_attempts=1")));
  CompiledProgram program = compile_or_throw("main() flaky(7)", *reg);

  env.set("DELIRIUM_RETRIES", "2");
  {
    Runtime runtime(*reg, {.num_workers = 2});
    EXPECT_EQ(runtime.run(program).as_int(), 7);
    EXPECT_EQ(runtime.last_stats().retries, 1u);
  }
  env.set("DELIRIUM_RETRIES", "two");
  {
    Runtime runtime(*reg, {.num_workers = 2});
    try {
      runtime.run(program);
      FAIL() << "expected EnvError";
    } catch (const EnvError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("DELIRIUM_RETRIES"), std::string::npos) << what;
      EXPECT_NE(what.find("'two'"), std::string::npos) << what;
    }
  }
}

}  // namespace
}  // namespace delirium
