// The central claim of the model (§8/§9.1): "execution within the model
// is deterministic ... regardless of the number of processors you are
// using and the order of execution." These property tests sweep worker
// counts, scheduler policies, and repeated runs over generated programs
// and the applications.
#include <gtest/gtest.h>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"

namespace delirium {
namespace {

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    return reg;
  }();
  return r;
}

class GeneratedDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedDeterminism, SameValueAcrossWorkerCountsAndRuns) {
  dcc::GenParams params;
  params.num_functions = 18;
  params.body_size = 30;
  params.seed = GetParam();
  const std::string source = dcc::generate_program(params);
  CompiledProgram program = compile_or_throw(source, registry());

  int64_t expected = 0;
  bool first = true;
  for (int workers : {1, 2, 3, 4, 7}) {
    Runtime runtime(registry(), {.num_workers = workers});
    for (int run = 0; run < 3; ++run) {
      const int64_t value = runtime.run(program).as_int();
      if (first) {
        expected = value;
        first = false;
      }
      EXPECT_EQ(value, expected)
          << "seed " << GetParam() << " workers " << workers << " run " << run;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedDeterminism,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108));

TEST(Determinism, IndependentOfSchedulerPolicy) {
  // FIFO vs priorities and every affinity mode must agree on values.
  CompiledProgram program = compile_or_throw(R"(
fib(n) if less_than(n, 2) then n else add(fib(sub(n, 1)), fib(sub(n, 2)))
main() fib(14)
)",
                                             registry());
  const int64_t expected = 377;
  for (const bool priorities : {true, false}) {
    for (const auto affinity :
         {AffinityMode::kNone, AffinityMode::kOperator, AffinityMode::kData}) {
      Runtime runtime(registry(), {.num_workers = 4,
                                   .use_priorities = priorities,
                                   .affinity = affinity});
      EXPECT_EQ(runtime.run(program).as_int(), expected);
    }
  }
}

TEST(Determinism, VirtualTimeMatchesThreadedForAllProcCounts) {
  CompiledProgram program = compile_or_throw(R"(
main()
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, mul(i, i))
  } while less_than(i, 50), result acc
)",
                                             registry());
  Runtime threaded(registry(), {.num_workers = 2});
  const int64_t expected = threaded.run(program).as_int();
  for (int procs : {1, 2, 4, 16}) {
    SimRuntime sim(registry(), {.num_procs = procs});
    EXPECT_EQ(sim.run(program).result.as_int(), expected) << procs;
  }
}

TEST(Determinism, NumaAndAffinityNeverChangeValues) {
  CompiledProgram program = compile_or_throw(R"(
f(n) if less_than(n, 2) then 1 else mul(n, f(decr(n)))
main() f(12)
)",
                                             registry());
  SimRuntime plain(registry(), {.num_procs = 3});
  const int64_t expected = plain.run(program).result.as_int();
  SimConfig config;
  config.num_procs = 3;
  config.remote_penalty_ns_per_kb = 5000;
  config.affinity = AffinityMode::kData;
  SimRuntime numa(registry(), config);
  EXPECT_EQ(numa.run(program).result.as_int(), expected);
}

TEST(Determinism, ErrorsAreDeterministicToo) {
  // §8: "If there is a bug in the program it will recur in exactly the
  // same way every execution."
  CompiledProgram program = compile_or_throw(R"(
main()
  iterate {
    i = 0, incr(i)
    acc = 1, div(acc, sub(3, i))
  } while less_than(i, 10), result acc
)",
                                             registry());
  std::string first_message;
  for (int workers : {1, 2, 4}) {
    Runtime runtime(registry(), {.num_workers = workers});
    try {
      runtime.run(program);
      FAIL() << "expected division by zero";
    } catch (const RuntimeError& e) {
      if (first_message.empty()) {
        first_message = e.what();
      } else {
        EXPECT_EQ(first_message, e.what()) << "workers " << workers;
      }
    }
  }
  EXPECT_NE(first_message.find("division by zero"), std::string::npos);
}

}  // namespace
}  // namespace delirium
