// The central claim of the model (§8/§9.1): "execution within the model
// is deterministic ... regardless of the number of processors you are
// using and the order of execution." These property tests run generated
// programs and hand-written workloads through the ExecutorFixture
// matrix — both threaded schedulers × {1, 2, 8} workers plus the
// virtual-time simulator — asserting identical values, counters, and
// deterministic trace multisets everywhere.
#include <gtest/gtest.h>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

class GeneratedDeterminism : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratedDeterminism, SameValueAcrossAllExecutorsAndRuns) {
  dcc::GenParams params;
  params.num_functions = 18;
  params.body_size = 30;
  params.seed = GetParam();
  const std::string source = dcc::generate_program(params);

  testing::ExecutorFixture fixture;
  const testing::ExecutorOutcome ref = fixture.expect_equivalent(source);
  ASSERT_FALSE(ref.faulted()) << ref.error_text;

  // Repeated runs on one runtime agree with the matrix too.
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(source, *reg);
  Runtime runtime(*reg, {.num_workers = 3});
  for (int run = 0; run < 3; ++run) {
    EXPECT_TRUE(deep_equal(runtime.run(program), ref.value))
        << "seed " << GetParam() << " run " << run;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedDeterminism,
                         ::testing::Values(101, 102, 103, 104, 105, 106, 107, 108));

TEST(Determinism, IndependentOfSchedulerPolicy) {
  // FIFO vs priorities and every affinity mode must agree on values —
  // across the whole executor matrix, not just one runtime.
  const std::string source = R"(
fib(n) if less_than(n, 2) then n else add(fib(sub(n, 1)), fib(sub(n, 2)))
main() fib(14)
)";
  for (const bool priorities : {true, false}) {
    for (const auto affinity :
         {AffinityMode::kNone, AffinityMode::kOperator, AffinityMode::kData}) {
      testing::ExecutorFixture fixture;
      fixture.config().use_priorities = priorities;
      fixture.config().affinity = affinity;
      const testing::ExecutorOutcome ref = fixture.expect_equivalent(source);
      EXPECT_EQ(ref.value_or_rethrow().as_int(), 377);
    }
  }
}

TEST(Determinism, VirtualTimeMatchesThreadedForAllProcCounts) {
  testing::ExecutorFixture fixture;
  // The default matrix carries sim at 1 and 4 procs; sweep further out.
  fixture.matrix().push_back({testing::ExecutorSpec::Kind::kSim, 2});
  fixture.matrix().push_back({testing::ExecutorSpec::Kind::kSim, 16});
  const testing::ExecutorOutcome ref = fixture.expect_equivalent(R"(
main()
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, mul(i, i))
  } while less_than(i, 50), result acc
)");
  EXPECT_EQ(ref.value_or_rethrow().as_int(), 40425);
}

TEST(Determinism, NumaAndAffinityNeverChangeValues) {
  const std::string source = R"(
f(n) if less_than(n, 2) then 1 else mul(n, f(decr(n)))
main() f(12)
)";
  testing::ExecutorFixture plain;
  const int64_t expected = plain.expect_equivalent(source).value_or_rethrow().as_int();
  testing::ExecutorFixture numa;
  numa.config().remote_penalty_ns_per_kb = 5000;
  numa.config().affinity = AffinityMode::kData;
  EXPECT_EQ(numa.expect_equivalent(source).value_or_rethrow().as_int(), expected);
}

TEST(Determinism, ErrorsAreDeterministicToo) {
  // §8: "If there is a bug in the program it will recur in exactly the
  // same way every execution." The fixture asserts the byte-identical
  // report across every executor; this test checks the content.
  testing::ExecutorFixture fixture;
  const testing::ExecutorOutcome ref = fixture.expect_equivalent(R"(
main()
  iterate {
    i = 0, incr(i)
    acc = 1, div(acc, sub(3, i))
  } while less_than(i, 10), result acc
)");
  ASSERT_TRUE(ref.faulted()) << "expected division by zero";
  EXPECT_THROW(ref.value_or_rethrow(), RuntimeError);
  EXPECT_NE(ref.error_text.find("division by zero"), std::string::npos);
}

}  // namespace
}  // namespace delirium
