// Multi-instance isolation (docs/ROBUSTNESS.md "Isolation model"): many
// concurrent program instances over one shared machine, with fault
// containment, per-instance budgets, deterministic admission shedding,
// and machine reuse after cancellation — on both executors.
//
// The central contracts exercised here:
//  - a faulting instance reports the byte-identical error its solo run
//    reports, and siblings complete unperturbed;
//  - budget and shed outcomes are structured results with deterministic
//    text, identical across schedulers, worker counts, and executors;
//  - shed decisions are a pure function of the caller's submit()/wait()
//    sequence, independent of worker timing.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/instance.h"
#include "src/runtime/sim.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ScopedEnv;

std::shared_ptr<const FaultPlan> plan_of(const std::string& spec) {
  return std::make_shared<const FaultPlan>(FaultPlan::parse(spec));
}

// `main` must be nullary, so the parameterized traffic enters through
// named functions and InstanceRequest::function.
constexpr const char* kFibSource =
    "fib(n) if less_than(n, 2) then n else add(fib(sub(n, 1)), fib(sub(n, 2)))\n"
    "main() fib(10)";

int64_t fib(int64_t n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }

/// Compile with the optimizer off: the tiny single-call helper
/// functions the instance requests name would otherwise be inlined into
/// main() and their templates dropped.
CompiledProgram compile_noopt(const std::string& source, const OperatorRegistry& reg) {
  CompileOptions copts;
  copts.optimize = false;
  return compile_or_throw(source, reg, copts);
}

InstanceRequest req_of(const CompiledProgram& program, std::string function,
                       std::vector<Value> args = {}, InstanceBudget budget = {}) {
  InstanceRequest r;
  r.program = &program;
  r.function = std::move(function);
  r.args = std::move(args);
  r.budget = budget;
  return r;
}

InstanceRequest fib_req(const CompiledProgram& program, int64_t n,
                        InstanceBudget budget = {}) {
  return req_of(program, "fib", {Value::of(n)}, budget);
}

std::string activation_budget_message(uint64_t max_activations, uint64_t id,
                                      const std::string& function) {
  return "instance budget: activation count exceeded " + std::to_string(max_activations) +
         " (instance " + std::to_string(id) + ": '" + function +
         "'); cancelling instance";
}

std::string shed_message(size_t capacity, uint64_t id) {
  return "admission control: capacity " + std::to_string(capacity) + " reached; instance " +
         std::to_string(id) + " shed";
}

/// The threaded schedulers × worker counts the isolation contracts are
/// swept across (the virtual-time legs construct SimRuntime directly).
std::vector<std::pair<SchedulerKind, int>> threaded_matrix() {
  std::vector<std::pair<SchedulerKind, int>> out;
  for (const SchedulerKind s : {SchedulerKind::kGlobalLock, SchedulerKind::kWorkStealing}) {
    for (const int w : {1, 2, 8}) out.emplace_back(s, w);
  }
  return out;
}

std::string spec_name(SchedulerKind s, int workers) {
  return std::string(s == SchedulerKind::kWorkStealing ? "ws" : "gl") +
         std::to_string(workers);
}

// ---------------------------------------------------------------------------
// Basics: healthy instances complete with correct values and counters
// ---------------------------------------------------------------------------

TEST(InstanceBasics, ThreadedInstancesCompleteWithCorrectValues) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(kFibSource, *reg);
  Runtime runtime(*reg, {.num_workers = 4});
  {
    InstanceManager mgr(runtime);
    for (const int64_t n : {8, 9, 10, 11}) mgr.submit(fib_req(program, n));
    const std::vector<InstanceResult> results = mgr.wait_all();
    ASSERT_EQ(results.size(), 4u);
    const int64_t args[] = {8, 9, 10, 11};
    for (size_t i = 0; i < results.size(); ++i) {
      const InstanceResult& r = results[i];
      EXPECT_EQ(r.id, i + 1);
      ASSERT_EQ(r.outcome, InstanceOutcome::kCompleted) << r.error;
      EXPECT_EQ(r.value.as_int(), fib(args[i]));
      EXPECT_GT(r.activations, 0u);
      EXPECT_GE(r.latency_ns, 0);
    }
    const InstanceCounters c = mgr.counters();
    EXPECT_EQ(c.admitted, 4u);
    EXPECT_EQ(c.completed, 4u);
    EXPECT_EQ(c.faulted, 0u);
    EXPECT_EQ(c.budget_killed, 0u);
    EXPECT_EQ(c.shed, 0u);
    EXPECT_EQ(c.live, 0u);
    EXPECT_EQ(mgr.latencies().size(), 4u);
    const RunStats s = mgr.stats();
    EXPECT_EQ(s.instances_admitted, 4u);
    EXPECT_EQ(s.instances_completed, 4u);
    EXPECT_EQ(s.instances_shed, 0u);
    EXPECT_GT(s.activations_created, 0u);
  }
  // The session published its stats through the usual accessor.
  EXPECT_EQ(runtime.last_stats().instances_completed, 4u);
}

TEST(InstanceBasics, SimBatchCompletesDeterministically) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(kFibSource, *reg);
  // Round 0 records measured operator costs; round 1 replays them, and
  // with replayed costs the virtual schedule — and so every per-instance
  // latency — reproduces exactly.
  CostTable costs;
  std::vector<int64_t> first_latencies;
  for (int round = 0; round < 2; ++round) {
    SimConfig config;
    if (round == 0) {
      config.record_costs = &costs;
    } else {
      config.replay_costs = &costs;
    }
    SimRuntime sim(*reg, config);
    InstanceManager mgr(sim);
    for (const int64_t n : {6, 9, 12}) mgr.submit(fib_req(program, n));
    const std::vector<InstanceResult> results = mgr.wait_all();
    ASSERT_EQ(results.size(), 3u);
    const int64_t args[] = {6, 9, 12};
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(results[i].outcome, InstanceOutcome::kCompleted) << results[i].error;
      EXPECT_EQ(results[i].value.as_int(), fib(args[i]));
    }
    std::vector<int64_t> lats = mgr.latencies();
    ASSERT_EQ(lats.size(), 3u);
    if (round == 0) {
      first_latencies = lats;
    } else {
      EXPECT_EQ(lats, first_latencies);
    }
    const InstanceCounters c = mgr.counters();
    EXPECT_EQ(c.admitted, 3u);
    EXPECT_EQ(c.completed, 3u);
    EXPECT_EQ(c.live, 0u);
  }
}

TEST(InstanceBasics, OutcomeNamesAndBadWaitId) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  EXPECT_STREQ(instance_outcome_name(InstanceOutcome::kCompleted), "completed");
  EXPECT_STREQ(instance_outcome_name(InstanceOutcome::kFaulted), "faulted");
  EXPECT_STREQ(instance_outcome_name(InstanceOutcome::kBudgetExhausted),
               "budget_exhausted");
  EXPECT_STREQ(instance_outcome_name(InstanceOutcome::kOverload), "overload");

  auto reg = testing::builtin_registry();
  SimRuntime sim(*reg, {});
  InstanceManager mgr(sim);
  EXPECT_THROW(mgr.wait(1), RuntimeError);
  EXPECT_THROW(mgr.wait(0), RuntimeError);
}

// ---------------------------------------------------------------------------
// Fault containment: byte-identical to solo, siblings unperturbed
// ---------------------------------------------------------------------------

/// Registry whose `boomif` throws for input 13 and passes anything else
/// through. Structural (value-driven) faulting, so every executor and
/// every schedule faults in exactly the same graph position.
std::shared_ptr<OperatorRegistry> boomif_registry() {
  auto reg = testing::builtin_registry();
  reg->add("boomif", 1, [](OpContext& ctx) -> Value {
       const int64_t v = ctx.arg_int(0);
       if (v == 13) throw RuntimeError("boomif: unlucky 13");
       return Value::of(v);
     })
      .pure();
  return reg;
}

TEST(InstanceIsolation, FaultIsContainedAndByteIdenticalToSolo) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = boomif_registry();
  CompiledProgram program =
      compile_noopt("probe(n) add(boomif(n), 1)\nmain() probe(1)", *reg);

  // The reference report: what a solo run of the faulting input says.
  std::string solo_error;
  {
    Runtime solo(*reg, {.num_workers = 2});
    try {
      solo.run_function(program, "probe", {Value::of(int64_t{13})});
      FAIL() << "expected FaultError";
    } catch (const FaultError& e) {
      solo_error = e.what();
    }
  }
  ASSERT_NE(solo_error.find("boomif: unlucky 13"), std::string::npos) << solo_error;
  ASSERT_NE(solo_error.find("coordination stack:"), std::string::npos) << solo_error;

  const int64_t args[] = {5, 13, 7, 13, 9};
  for (const auto& [sched, workers] : threaded_matrix()) {
    RuntimeConfig config;
    config.num_workers = workers;
    config.scheduler = sched;
    Runtime runtime(*reg, config);
    InstanceManager mgr(runtime);
    for (const int64_t n : args) {
      mgr.submit(req_of(program, "probe", {Value::of(n)}));
    }
    const std::vector<InstanceResult> results = mgr.wait_all();
    const std::string where = spec_name(sched, workers);
    for (size_t i = 0; i < results.size(); ++i) {
      const InstanceResult& r = results[i];
      if (args[i] == 13) {
        ASSERT_EQ(r.outcome, InstanceOutcome::kFaulted) << where << " " << r.error;
        ASSERT_TRUE(r.have_fault) << where;
        EXPECT_EQ(r.fault.op, "boomif") << where;
        EXPECT_EQ(r.error, solo_error) << where;
      } else {
        ASSERT_EQ(r.outcome, InstanceOutcome::kCompleted) << where << " " << r.error;
        EXPECT_EQ(r.value.as_int(), args[i] + 1) << where;
      }
    }
    const InstanceCounters c = mgr.counters();
    EXPECT_EQ(c.completed, 3u) << where;
    EXPECT_EQ(c.faulted, 2u) << where;
  }

  // The simulator reports the same bytes.
  SimRuntime sim(*reg, {});
  InstanceManager mgr(sim);
  for (const int64_t n : args) {
    mgr.submit(req_of(program, "probe", {Value::of(n)}));
  }
  for (const InstanceResult& r : mgr.wait_all()) {
    if (r.outcome == InstanceOutcome::kFaulted) {
      EXPECT_EQ(r.error, solo_error);
    }
  }
}

// ---------------------------------------------------------------------------
// Budgets: activation ceilings (both executors) and time ceilings
// ---------------------------------------------------------------------------

TEST(InstanceBudget_, ActivationCeilingIsDeterministicEverywhere) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(kFibSource, *reg);
  const std::string expected = activation_budget_message(4, 1, "fib");

  for (const auto& [sched, workers] : threaded_matrix()) {
    RuntimeConfig config;
    config.num_workers = workers;
    config.scheduler = sched;
    Runtime runtime(*reg, config);
    InstanceManager mgr(runtime);
    mgr.submit(fib_req(program, 12, {.max_activations = 4}));
    mgr.submit(fib_req(program, 8));
    const std::vector<InstanceResult> results = mgr.wait_all();
    const std::string where = spec_name(sched, workers);
    ASSERT_EQ(results.size(), 2u);
    ASSERT_EQ(results[0].outcome, InstanceOutcome::kBudgetExhausted)
        << where << " " << results[0].error;
    EXPECT_EQ(results[0].error, expected) << where;
    EXPECT_GE(results[0].activations, 4u) << where;
    // The sibling never notices the cancellation next door.
    ASSERT_EQ(results[1].outcome, InstanceOutcome::kCompleted)
        << where << " " << results[1].error;
    EXPECT_EQ(results[1].value.as_int(), fib(8)) << where;
    const InstanceCounters c = mgr.counters();
    EXPECT_EQ(c.budget_killed, 1u) << where;
    EXPECT_EQ(c.completed, 1u) << where;
    EXPECT_EQ(mgr.stats().instances_budget_killed, 1u) << where;
  }

  // The virtual machine emits the identical message text.
  SimRuntime sim(*reg, {});
  InstanceManager mgr(sim);
  mgr.submit(fib_req(program, 12, {.max_activations = 4}));
  mgr.submit(fib_req(program, 8));
  const std::vector<InstanceResult> results = mgr.wait_all();
  ASSERT_EQ(results[0].outcome, InstanceOutcome::kBudgetExhausted) << results[0].error;
  EXPECT_EQ(results[0].error, expected);
  ASSERT_EQ(results[1].outcome, InstanceOutcome::kCompleted) << results[1].error;
  EXPECT_EQ(results[1].value.as_int(), fib(8));
}

TEST(InstanceBudget_, DefaultBudgetAppliesWhereRequestLeavesZeros) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(kFibSource, *reg);
  Runtime runtime(*reg, {.num_workers = 2});
  InstanceManagerConfig mconfig;
  mconfig.default_budget.max_activations = 4;
  InstanceManager mgr(runtime, mconfig);
  mgr.submit(fib_req(program, 12));  // inherits the default
  mgr.submit(fib_req(program, 12, {.max_activations = 100000}));
  const std::vector<InstanceResult> results = mgr.wait_all();
  ASSERT_EQ(results[0].outcome, InstanceOutcome::kBudgetExhausted) << results[0].error;
  EXPECT_EQ(results[0].error, activation_budget_message(4, 1, "fib"));
  ASSERT_EQ(results[1].outcome, InstanceOutcome::kCompleted) << results[1].error;
  EXPECT_EQ(results[1].value.as_int(), fib(12));
}

TEST(InstanceBudget_, VirtualTimeCeilingIsExactlyReproducible) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("slow_id", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); }).pure();
  // A 10 ms *virtual* stall against a 0.1 ms virtual budget: the join
  // node's start time exceeds the ceiling, deterministically.
  reg->set_fault_plan(plan_of("slow_id:stall=10000000"));
  CompiledProgram slow =
      compile_noopt("stallf(n) add(slow_id(n), 1)\nmain() stallf(1)", *reg);
  CompiledProgram quick = compile_noopt("inc(n) add(n, 1)\nmain() inc(1)", *reg);

  std::string first;
  for (int round = 0; round < 2; ++round) {
    SimRuntime sim(*reg, {});
    InstanceManager mgr(sim);
    mgr.submit(req_of(slow, "stallf", {Value::of(int64_t{1})},
                      {.time_budget_ns = 100000}));
    mgr.submit(req_of(quick, "inc", {Value::of(int64_t{41})}));
    const std::vector<InstanceResult> results = mgr.wait_all();
    ASSERT_EQ(results[0].outcome, InstanceOutcome::kBudgetExhausted) << results[0].error;
    EXPECT_NE(results[0].error.find("instance budget: no result within 100000 virtual ns"
                                    " (instance 1: 'stallf'); cancelling instance"),
              std::string::npos)
        << results[0].error;
    EXPECT_NE(results[0].error.find("stranded activations:"), std::string::npos)
        << results[0].error;
    ASSERT_EQ(results[1].outcome, InstanceOutcome::kCompleted) << results[1].error;
    EXPECT_EQ(results[1].value.as_int(), 42);
    // The whole diagnostic reproduces byte for byte.
    if (round == 0) {
      first = results[0].error;
    } else {
      EXPECT_EQ(results[0].error, first);
    }
  }
}

TEST(InstanceBudget_, WallClockCeilingNamesTheWedgedOperator) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("nap", 0, [](OpContext&) {
       std::this_thread::sleep_for(std::chrono::milliseconds(150));
       return Value::of(int64_t{1});
     })
      .pure();
  reg->add("sleepy", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); }).pure();
  CompiledProgram slow = compile_or_throw("main() sleepy(nap())", *reg);
  CompiledProgram fibp = compile_or_throw(kFibSource, *reg);

  Runtime runtime(*reg, {.num_workers = 2});
  {
    InstanceManagerConfig mconfig;
    mconfig.track_busy_workers = true;
    InstanceManager mgr(runtime, mconfig);
    // 30 ms budget against a 150 ms nap; empty function = entry 'main'.
    mgr.submit(req_of(slow, "", {}, {.time_budget_ns = 30000000}));
    mgr.submit(fib_req(fibp, 10));
    const std::vector<InstanceResult> results = mgr.wait_all();
    ASSERT_EQ(results[0].outcome, InstanceOutcome::kBudgetExhausted) << results[0].error;
    const std::string& msg = results[0].error;
    EXPECT_EQ(msg.rfind("instance budget: no result within 30 ms (instance 1: 'main');"
                        " cancelling instance\n",
                        0),
              0u)
        << msg;
    EXPECT_NE(msg.find("busy workers:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("stranded activations:"), std::string::npos) << msg;
    ASSERT_EQ(results[1].outcome, InstanceOutcome::kCompleted) << results[1].error;
    EXPECT_EQ(results[1].value.as_int(), fib(10));
    EXPECT_EQ(mgr.counters().budget_killed, 1u);
  }
  // The machine survives the cancellation: plain runs still work.
  CompiledProgram clean = compile_or_throw("main() sleepy(40)", *reg);
  EXPECT_EQ(runtime.run(clean).as_int(), 40);
}

// ---------------------------------------------------------------------------
// Admission control: deterministic reject-newest shedding
// ---------------------------------------------------------------------------

TEST(InstanceAdmission, RejectNewestIsAFunctionOfTheCallSequence) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_noopt("inc(n) add(n, 1)\nmain() inc(1)", *reg);

  for (const auto& [sched, workers] : threaded_matrix()) {
    RuntimeConfig config;
    config.num_workers = workers;
    config.scheduler = sched;
    Runtime runtime(*reg, config);
    InstanceManagerConfig mconfig;
    mconfig.admission_capacity = 2;
    InstanceManager mgr(runtime, mconfig);
    // Occupancy frees only on wait(), so ids 3 and 4 are shed no matter
    // how quickly the workers drain ids 1 and 2.
    for (int64_t n = 0; n < 4; ++n) {
      mgr.submit(req_of(program, "inc", {Value::of(n)}));
    }
    const std::string where = spec_name(sched, workers);
    const std::vector<InstanceResult> results = mgr.wait_all();
    ASSERT_EQ(results.size(), 4u);
    for (uint64_t id = 1; id <= 2; ++id) {
      ASSERT_EQ(results[id - 1].outcome, InstanceOutcome::kCompleted)
          << where << " " << results[id - 1].error;
      EXPECT_EQ(results[id - 1].value.as_int(), static_cast<int64_t>(id)) << where;
    }
    for (uint64_t id = 3; id <= 4; ++id) {
      ASSERT_EQ(results[id - 1].outcome, InstanceOutcome::kOverload) << where;
      EXPECT_EQ(results[id - 1].error, shed_message(2, id)) << where;
      EXPECT_EQ(results[id - 1].activations, 0u) << where;
    }
    const InstanceCounters c = mgr.counters();
    EXPECT_EQ(c.admitted, 2u) << where;
    EXPECT_EQ(c.completed, 2u) << where;
    EXPECT_EQ(c.shed, 2u) << where;
    EXPECT_EQ(mgr.stats().instances_shed, 2u) << where;
    // wait_all collected everything, so the window is open again.
    const uint64_t id = mgr.submit(req_of(program, "inc", {Value::of(int64_t{9})}));
    EXPECT_EQ(id, 5u) << where;
    const InstanceResult r = mgr.wait(id);
    ASSERT_EQ(r.outcome, InstanceOutcome::kCompleted) << where << " " << r.error;
    EXPECT_EQ(r.value.as_int(), 10) << where;
  }
}

TEST(InstanceAdmission, SimSessionSpansBatchesAndFreesCapacityOnWait) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_noopt("inc(n) add(n, 1)\nmain() inc(1)", *reg);
  SimRuntime sim(*reg, {});
  InstanceManagerConfig mconfig;
  mconfig.admission_capacity = 1;
  InstanceManager mgr(sim, mconfig);
  mgr.submit(req_of(program, "inc", {Value::of(int64_t{1})}));
  mgr.submit(req_of(program, "inc", {Value::of(int64_t{2})}));  // shed: window full
  const InstanceResult first = mgr.wait(1);              // flushes batch 1, frees the slot
  ASSERT_EQ(first.outcome, InstanceOutcome::kCompleted) << first.error;
  EXPECT_EQ(first.value.as_int(), 2);
  EXPECT_EQ(mgr.wait(2).outcome, InstanceOutcome::kOverload);
  EXPECT_EQ(mgr.wait(2).error, shed_message(1, 2));
  const uint64_t id = mgr.submit(req_of(program, "inc", {Value::of(int64_t{3})}));
  EXPECT_EQ(id, 3u);
  const InstanceResult third = mgr.wait(id);  // second batch on a fresh virtual machine
  ASSERT_EQ(third.outcome, InstanceOutcome::kCompleted) << third.error;
  EXPECT_EQ(third.value.as_int(), 4);
  const InstanceCounters c = mgr.counters();
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.shed, 1u);
  // The cumulative tallies survive the batch boundary in stats() too.
  EXPECT_EQ(mgr.stats().instances_admitted, 2u);
  EXPECT_EQ(mgr.stats().instances_shed, 1u);
}

// ---------------------------------------------------------------------------
// Machine reuse: cancellation and shedding leave no residue
// ---------------------------------------------------------------------------

TEST(InstanceReuse, RuntimeReusableAfterWatchdogCancellation) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("nap2", 0, [](OpContext&) {
       std::this_thread::sleep_for(std::chrono::milliseconds(200));
       return Value::of(int64_t{1});
     })
      .pure();
  reg->add("sleepy2", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); }).pure();
  CompiledProgram slow = compile_or_throw("main() sleepy2(nap2())", *reg);
  CompiledProgram fibp = compile_or_throw(kFibSource, *reg);

  for (const SchedulerKind sched :
       {SchedulerKind::kGlobalLock, SchedulerKind::kWorkStealing}) {
    RuntimeConfig config;
    config.num_workers = 2;
    config.scheduler = sched;
    config.watchdog_budget_ms = 40;
    Runtime runtime(*reg, config);
    EXPECT_THROW(runtime.run(slow), RuntimeError) << spec_name(sched, 2);
    EXPECT_EQ(runtime.last_stats().watchdog_fires, 1u) << spec_name(sched, 2);
    // A whole manager session works on the cancelled machine...
    {
      InstanceManager mgr(runtime);
      mgr.submit(fib_req(fibp, 9));
      mgr.submit(fib_req(fibp, 10));
      const std::vector<InstanceResult> results = mgr.wait_all();
      ASSERT_EQ(results[0].outcome, InstanceOutcome::kCompleted) << results[0].error;
      EXPECT_EQ(results[0].value.as_int(), fib(9));
      ASSERT_EQ(results[1].outcome, InstanceOutcome::kCompleted) << results[1].error;
      EXPECT_EQ(results[1].value.as_int(), fib(10));
    }
    // ...and so does a plain run after the session (watchdog still armed).
    EXPECT_EQ(runtime.run_function(fibp, "fib", {Value::of(int64_t{7})}).as_int(),
              fib(7))
        << spec_name(sched, 2);
  }
}

TEST(InstanceReuse, RuntimeReusableAfterAdmissionShed) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(kFibSource, *reg);
  for (const SchedulerKind sched :
       {SchedulerKind::kGlobalLock, SchedulerKind::kWorkStealing}) {
    RuntimeConfig config;
    config.num_workers = 2;
    config.scheduler = sched;
    Runtime runtime(*reg, config);
    {
      InstanceManagerConfig mconfig;
      mconfig.admission_capacity = 1;
      InstanceManager mgr(runtime, mconfig);
      mgr.submit(fib_req(program, 8));
      mgr.submit(fib_req(program, 8));  // shed
      const std::vector<InstanceResult> results = mgr.wait_all();
      EXPECT_EQ(results[0].outcome, InstanceOutcome::kCompleted);
      EXPECT_EQ(results[1].outcome, InstanceOutcome::kOverload);
    }
    EXPECT_EQ(runtime.run_function(program, "fib", {Value::of(int64_t{8})}).as_int(),
              fib(8))
        << spec_name(sched, 2);
  }
}

TEST(InstanceReuse, SimReusableAfterWatchdogAndManagerSession) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("slow_id2", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); }).pure();
  reg->set_fault_plan(plan_of("slow_id2:stall=10000000"));
  CompiledProgram slow =
      compile_noopt("stallf(n) add(slow_id2(n), 1)\nmain() stallf(1)", *reg);
  CompiledProgram fibp = compile_or_throw(kFibSource, *reg);

  // A machine-wide virtual watchdog big enough for the healthy traffic
  // below but smaller than the injected 10 ms stall.
  SimConfig config;
  config.watchdog_budget_ns = 5000000;
  SimRuntime sim(*reg, config);
  EXPECT_THROW(sim.run(slow), RuntimeError);
  {
    InstanceManager mgr(sim);
    mgr.submit(fib_req(fibp, 10));
    const std::vector<InstanceResult> results = mgr.wait_all();
    ASSERT_EQ(results[0].outcome, InstanceOutcome::kCompleted) << results[0].error;
    EXPECT_EQ(results[0].value.as_int(), fib(10));
  }
  EXPECT_EQ(sim.run_function(fibp, "fib", {Value::of(int64_t{8})}).result.as_int(),
            fib(8));
}

// ---------------------------------------------------------------------------
// Chaos soak: mixed healthy / faulting / budget-busting traffic
// ---------------------------------------------------------------------------

/// One instance's executor-invariant outcome, for cross-config
/// comparison (latencies and activation tallies are schedule-dependent
/// on cancelled instances and deliberately excluded).
struct SoakOutcome {
  InstanceOutcome outcome;
  std::string text;  // error, or the rendered value

  bool operator==(const SoakOutcome& o) const {
    return outcome == o.outcome && text == o.text;
  }
};

std::string render_value(const Value& v) { return std::to_string(v.as_int()); }

TEST(InstanceChaos, SoakMatchesSoloByteForByteAcrossExecutors) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  // Three traffic classes over one shared machine:
  //  - healthy: fib(n), untouched by the plan;
  //  - chaos:   calls chaos_op, which the plan throws into by structural
  //             every= selection — whether a given request faults is a
  //             function of its graph alone, identical to its solo run;
  //  - buster:  fib(14) under a 8-activation ceiling.
  constexpr int kInstances = 45;
  constexpr size_t kCapacity = 40;
  for (const uint64_t seed : {1u, 9u}) {
    auto reg = testing::builtin_registry();
    reg->add("chaos_op", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0) * 3); })
        .pure();
    reg->set_fault_plan(
        plan_of("chaos_op:throw:every=29:seed=" + std::to_string(seed)));
    CompiledProgram fibp = compile_or_throw(kFibSource, *reg);
    CompiledProgram chaos =
        compile_noopt("poke(n) add(chaos_op(n), 1)\nmain() poke(1)", *reg);

    // Request schedule: class = i % 3, arg varies with i.
    struct Req {
      const CompiledProgram* program;
      const char* function;
      int64_t arg;
      InstanceBudget budget;
    };
    std::vector<Req> reqs;
    for (int i = 0; i < kInstances; ++i) {
      switch (i % 3) {
        case 0: reqs.push_back({&fibp, "fib", 6 + (i % 5), {}}); break;
        case 1: reqs.push_back({&chaos, "poke", i, {}}); break;
        default: reqs.push_back({&fibp, "fib", 14, {.max_activations = 8}}); break;
      }
    }

    // Solo references for every distinct (program, arg) request.
    auto solo_of = [&](const Req& r) -> SoakOutcome {
      Runtime solo(*reg, {.num_workers = 2});
      try {
        return {InstanceOutcome::kCompleted,
                render_value(
                    solo.run_function(*r.program, r.function, {Value::of(r.arg)}))};
      } catch (const FaultError& e) {
        return {InstanceOutcome::kFaulted, e.what()};
      }
    };

    auto run_config = [&](auto&& make_engine) -> std::vector<SoakOutcome> {
      auto engine = make_engine();
      InstanceManagerConfig mconfig;
      mconfig.admission_capacity = kCapacity;
      InstanceManager mgr(*engine, mconfig);
      for (const Req& r : reqs) {
        mgr.submit(req_of(*r.program, r.function, {Value::of(r.arg)}, r.budget));
      }
      std::vector<SoakOutcome> out;
      for (const InstanceResult& r : mgr.wait_all()) {
        out.push_back({r.outcome, r.outcome == InstanceOutcome::kCompleted
                                      ? render_value(r.value)
                                      : r.error});
      }
      const InstanceCounters c = mgr.counters();
      EXPECT_EQ(c.admitted, static_cast<uint64_t>(kCapacity));
      EXPECT_EQ(c.shed, static_cast<uint64_t>(kInstances - kCapacity));
      EXPECT_EQ(c.admitted, c.completed + c.faulted + c.budget_killed);
      EXPECT_EQ(c.live, 0u);
      return out;
    };

    const std::vector<SoakOutcome> gl = run_config([&] {
      RuntimeConfig c;
      c.num_workers = 8;
      c.scheduler = SchedulerKind::kGlobalLock;
      return std::make_unique<Runtime>(*reg, c);
    });
    const std::vector<SoakOutcome> ws = run_config([&] {
      RuntimeConfig c;
      c.num_workers = 8;
      c.scheduler = SchedulerKind::kWorkStealing;
      return std::make_unique<Runtime>(*reg, c);
    });
    const std::vector<SoakOutcome> sim = run_config([&] {
      return std::make_unique<SimRuntime>(*reg, SimConfig{});
    });

    ASSERT_EQ(gl.size(), static_cast<size_t>(kInstances));
    for (int i = 0; i < kInstances; ++i) {
      const uint64_t id = static_cast<uint64_t>(i) + 1;
      const std::string where = "seed " + std::to_string(seed) + " instance " +
                                std::to_string(id) + " (class " + std::to_string(i % 3) +
                                ")";
      // Every config reports the identical outcome bytes.
      EXPECT_TRUE(ws[i] == gl[i])
          << where << "\n gl: " << gl[i].text << "\n ws: " << ws[i].text;
      EXPECT_TRUE(sim[i] == gl[i])
          << where << "\n gl: " << gl[i].text << "\n sim: " << sim[i].text;

      const SoakOutcome& r = gl[i];
      if (id > kCapacity) {
        EXPECT_EQ(r.outcome, InstanceOutcome::kOverload) << where;
        EXPECT_EQ(r.text, shed_message(kCapacity, id)) << where;
        continue;
      }
      switch (i % 3) {
        case 0:  // healthy: always completes with the solo value
          ASSERT_EQ(r.outcome, InstanceOutcome::kCompleted) << where << " " << r.text;
          EXPECT_EQ(r.text, std::to_string(fib(6 + (i % 5)))) << where;
          break;
        case 1: {  // chaos: whatever its solo run does, byte for byte
          const SoakOutcome solo = solo_of(reqs[static_cast<size_t>(i)]);
          EXPECT_EQ(r.outcome, solo.outcome) << where;
          EXPECT_EQ(r.text, solo.text) << where;
          break;
        }
        default:  // buster: structured budget kill with deterministic text
          ASSERT_EQ(r.outcome, InstanceOutcome::kBudgetExhausted) << where << " "
                                                                  << r.text;
          EXPECT_EQ(r.text, activation_budget_message(8, id, "fib")) << where;
          break;
      }
    }
  }
}

}  // namespace
}  // namespace delirium
