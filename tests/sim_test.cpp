// Virtual-time scheduler tests: value equivalence with the threaded
// runtime, makespan properties, cost replay, and the NUMA model.
#include <gtest/gtest.h>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"

namespace delirium {
namespace {

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    reg.add("make_data", 0, [](OpContext&) {
      return Value::block(std::vector<double>(1 << 12, 1.0));
    });
    reg.add("touch", 1, [](OpContext& ctx) { return ctx.take(0); }).destructive(0);
    return reg;
  }();
  return r;
}

TEST(Sim, AgreesWithThreadedRuntimeOnGeneratedPrograms) {
  for (uint64_t seed : {31ull, 32ull, 33ull}) {
    dcc::GenParams params;
    params.num_functions = 15;
    params.seed = seed;
    const std::string source = dcc::generate_program(params);
    CompiledProgram program = compile_or_throw(source, registry());
    Runtime threaded(registry(), {.num_workers = 3});
    SimRuntime virtual_time(registry(), {.num_procs = 3});
    EXPECT_EQ(threaded.run(program).as_int(), virtual_time.run(program).result.as_int())
        << "seed " << seed;
  }
}

TEST(Sim, MakespanPositiveAndBusyConsistent) {
  CompiledProgram program = compile_or_throw("main() add(1, 2)", registry());
  SimRuntime sim(registry(), {.num_procs = 2});
  SimResult result = sim.run(program);
  EXPECT_GT(result.makespan, 0);
  EXPECT_GT(result.total_busy, 0);
  EXPECT_EQ(result.proc_busy.size(), 2u);
  EXPECT_EQ(result.result.as_int(), 3);
}

TEST(Sim, MoreProcessorsNeverSlowerUnderReplay) {
  // With a fixed cost table the schedule is deterministic; extra
  // processors cannot hurt a greedy pull scheduler on a fork-join graph.
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("work", 1, [](OpContext& ctx) {
    volatile double acc = 0;
    for (int i = 0; i < 20000; ++i) acc = acc + i;
    (void)acc;
    return ctx.take(0);
  }).pure();
  std::string source = "main()\n  let\n";
  for (int i = 0; i < 8; ++i) {
    source += "    x" + std::to_string(i) + " = work(" + std::to_string(i) + ")\n";
  }
  source += "  in add(add(add(x0, x1), add(x2, x3)), add(add(x4, x5), add(x6, x7)))\n";
  CompiledProgram program = compile_or_throw(source, reg);
  const CostTable costs = calibrate_costs(reg, program, 3);
  Ticks prev = std::numeric_limits<Ticks>::max();
  for (int procs : {1, 2, 4, 8}) {
    SimConfig config;
    config.num_procs = procs;
    config.replay_costs = &costs;
    SimRuntime sim(reg, config);
    const Ticks makespan = sim.run(program).makespan;
    EXPECT_LE(makespan, prev) << procs << " processors";
    prev = makespan;
  }
}

TEST(Sim, EightIndependentTasksScalePastFour) {
  // Same workload: speedup at 8 procs must approach 8 for the parallel
  // section (modulo the join chain).
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("work", 1, [](OpContext& ctx) {
    volatile double acc = 0;
    for (int i = 0; i < 200000; ++i) acc = acc + i;
    (void)acc;
    return ctx.take(0);
  }).pure();
  std::string source = "main()\n  let\n";
  for (int i = 0; i < 8; ++i) {
    source += "    x" + std::to_string(i) + " = work(" + std::to_string(i) + ")\n";
  }
  source += "  in add(add(add(x0, x1), add(x2, x3)), add(add(x4, x5), add(x6, x7)))\n";
  CompiledProgram program = compile_or_throw(source, reg);
  const CostTable costs = calibrate_costs(reg, program, 3);
  auto makespan_at = [&](int procs) {
    SimConfig config;
    config.num_procs = procs;
    config.replay_costs = &costs;
    SimRuntime sim(reg, config);
    return static_cast<double>(sim.run(program).makespan);
  };
  // Thresholds leave headroom for calibration noise under background
  // load on the single-core host (ideal: 8x and 2x).
  const double one = makespan_at(1);
  EXPECT_GT(one / makespan_at(8), 3.5);
  EXPECT_GT(one / makespan_at(2), 1.5);
}

TEST(Sim, CostReplayMakesMakespanReproducible) {
  CompiledProgram program = compile_or_throw(
      "main() iterate { i = 0, incr(i) } while less_than(i, 50), result i", registry());
  const CostTable costs = calibrate_costs(registry(), program, 3);
  SimConfig config;
  config.num_procs = 2;
  config.replay_costs = &costs;
  SimRuntime a(registry(), config);
  SimRuntime b(registry(), config);
  EXPECT_EQ(a.run(program).makespan, b.run(program).makespan);
}

TEST(Sim, CalibrationCoversEveryOperatorInvocation) {
  CompileOptions no_opt;
  no_opt.optimize = false;  // otherwise the expression folds away
  CompiledProgram program =
      compile_or_throw("main() add(incr(1), incr(2))", registry(), no_opt);
  const CostTable costs = calibrate_costs(registry(), program, 2);
  EXPECT_EQ(costs.per_op.at("incr").size(), 2u);
  EXPECT_EQ(costs.per_op.at("add").size(), 1u);
}

TEST(Sim, NumaModelChargesRemoteTouches) {
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("make_data", 0, [](OpContext&) {
    return Value::block(std::vector<double>(1 << 14, 1.0));  // 128 KiB
  });
  reg.add("touch", 1, [](OpContext& ctx) { return ctx.take(0); }).destructive(0);
  reg.add("join2", 2, [](OpContext&) { return Value::of(int64_t{1}); });
  // Two blocks produced and touched in parallel, then joined: on 2
  // processors the join necessarily sees at least one remote block.
  CompiledProgram program = compile_or_throw(R"(
main()
  let a = touch(make_data())
      b = touch(make_data())
  in join2(a, b)
)",
                                             reg);
  SimConfig config;
  config.num_procs = 2;
  config.remote_penalty_ns_per_kb = 1000;
  SimRuntime sim(reg, config);
  SimResult with_numa = sim.run(program);
  EXPECT_GE(with_numa.stats.remote_block_moves, 1u);
  EXPECT_EQ(with_numa.result.as_int(), 1);

  // The same program with no penalty reports no moves.
  SimConfig uma = config;
  uma.remote_penalty_ns_per_kb = 0;
  SimRuntime sim_uma(reg, uma);
  EXPECT_EQ(sim_uma.run(program).stats.remote_block_moves, 0u);
}

}  // namespace
}  // namespace delirium
