// Chain fusion and tuple-plumbing elision tests: rewrite structure
// (what fuses, what must not), the per-rewrite kill switches, fixpoint
// idempotence, verifier coverage of the fused-node invariants, and the
// equivalence property — a fused program agrees with its unfused twin
// on values, fault reports, and retry behavior across the whole
// executor matrix, including faults injected *inside* a fused chain.
#include <gtest/gtest.h>

#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>

#include "src/analysis/graph_verify.h"
#include "src/delirium.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ScopedEnv;

/// Every env knob these tests assert on, cleared for hermeticity.
constexpr std::initializer_list<const char*> kFusionEnv = {
    "DELIRIUM_GRAPH_FACTS", "DELIRIUM_FACTS_FUSE", "DELIRIUM_FACTS_TUPLES",
    "DELIRIUM_FACTS_FOLD",  "DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"};

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    reg.add("effectful", 1, [](OpContext& ctx) { return ctx.take(0); });
    reg.add("effectful2", 2, [](OpContext& ctx) { return ctx.take(0); });
    return reg;
  }();
  return r;
}

/// Compile without AST optimization, then apply only the graph pass, so
/// constant folding upstream cannot erase the chains under test.
std::pair<CompiledProgram, GraphOptStats> graph_optimized(const std::string& source) {
  CompileOptions options;
  options.optimize = false;
  CompiledProgram program = compile_or_throw(source, registry(), options);
  GraphOptStats stats = optimize_graphs(program, registry());
  return {std::move(program), stats};
}

const Node* find_fused(const Template& tmpl) {
  for (const Node& n : tmpl.nodes) {
    if (n.kind == NodeKind::kFused) return &n;
  }
  return nullptr;
}

size_t count_kind(const CompiledProgram& program, NodeKind kind) {
  size_t n = 0;
  for (const auto& t : program.templates) {
    for (const Node& node : t->nodes) n += node.kind == kind ? 1 : 0;
  }
  return n;
}

int64_t run_int(const CompiledProgram& program, int workers = 2) {
  Runtime runtime(registry(), {.num_workers = workers});
  return runtime.run(program).as_int();
}

// ---------------------------------------------------------------------------
// Rewrite structure
// ---------------------------------------------------------------------------

TEST(Fusion, FusesLinearChainRootedAtParameter) {
  ScopedEnv env(kFusionEnv);
  auto [program, stats] = graph_optimized("f(x) mul(add(incr(x), 1), 2)\nmain() f(5)");
  EXPECT_EQ(stats.chains_fused, 1u);
  EXPECT_EQ(stats.fused_nodes_absorbed, 2u);
  const Template* f = program.find("f");
  ASSERT_NE(f, nullptr);
  const Node* fused = find_fused(*f);
  ASSERT_NE(fused, nullptr);
  ASSERT_EQ(fused->fused.size(), 3u);
  EXPECT_EQ(fused->fused[0].op_name, "incr");
  EXPECT_EQ(fused->fused[1].op_name, "add");
  EXPECT_EQ(fused->fused[2].op_name, "mul");
  // The head takes only external inputs; each later member takes the
  // previous member's result plus its external constant.
  ASSERT_EQ(fused->fused[0].inputs.size(), 1u);
  EXPECT_NE(fused->fused[0].inputs[0], FusedMember::kChainInput);
  ASSERT_EQ(fused->fused[1].inputs.size(), 2u);
  EXPECT_EQ(fused->fused[1].inputs[0], FusedMember::kChainInput);
  ASSERT_EQ(fused->fused[2].inputs.size(), 2u);
  EXPECT_EQ(fused->fused[2].inputs[0], FusedMember::kChainInput);
  EXPECT_EQ(fused->num_inputs, 3u);  // x, 1, 2
  EXPECT_EQ(validate_graph(program), "");
  EXPECT_EQ(verify_report(verify_graphs(program, registry())), "");
  EXPECT_EQ(run_int(program), 14);  // (5+1+1)*2
}

TEST(Fusion, ImpureOperatorBreaksTheChain) {
  ScopedEnv env(kFusionEnv);
  auto [program, stats] =
      graph_optimized("f(x) mul(effectful(incr(x)), 2)\nmain() f(5)");
  EXPECT_EQ(stats.chains_fused, 0u);
  EXPECT_EQ(count_kind(program, NodeKind::kFused), 0u);
  EXPECT_EQ(run_int(program), 12);
}

TEST(Fusion, SharedProducerBreaksTheChain) {
  ScopedEnv env(kFusionEnv);
  // y feeds two consumers, so it can never be absorbed into either.
  auto [program, stats] =
      graph_optimized("f(x) let y = incr(x) in add(mul(y, 2), y)\nmain() f(5)");
  EXPECT_EQ(stats.chains_fused, 0u);
  EXPECT_EQ(run_int(program), 18);  // 6*2 + 6
}

TEST(Fusion, ComputedSiblingInputBlocksFusion) {
  ScopedEnv env(kFusionEnv);
  // Readiness preservation: fusing incr into add would make sub(y, 1)'s
  // result a prerequisite of the whole chain's dispatch, serialising two
  // operators that run in parallel in the unfused graph. Neither side
  // may link.
  auto [program, stats] =
      graph_optimized("f(x, y) add(incr(x), sub(y, 1))\nmain() f(5, 3)");
  EXPECT_EQ(stats.chains_fused, 0u);
  EXPECT_EQ(count_kind(program, NodeKind::kFused), 0u);
  EXPECT_EQ(run_int(program), 8);  // 6 + 2
}

TEST(Fusion, KillSwitchDisablesFusionOnly) {
  ScopedEnv env(kFusionEnv);
  env.set("DELIRIUM_FACTS_FUSE", "0");
  auto [program, stats] = graph_optimized("f(x) mul(add(incr(x), 1), 2)\nmain() f(5)");
  EXPECT_EQ(stats.chains_fused, 0u);
  EXPECT_EQ(count_kind(program, NodeKind::kFused), 0u);
  EXPECT_EQ(run_int(program), 14);
}

TEST(Fusion, MasterSwitchDisablesBothRewrites) {
  ScopedEnv env(kFusionEnv);
  env.set("DELIRIUM_GRAPH_FACTS", "0");
  auto [program, stats] = graph_optimized(
      "f(x) let <a, b> = <incr(x), 7> in mul(add(a, b), 2)\nmain() f(3)");
  EXPECT_EQ(stats.chains_fused, 0u);
  EXPECT_EQ(stats.tuples_elided, 0u);
  EXPECT_EQ(run_int(program), 22);  // (4+7)*2
}

/// Structural dump of the fused payloads, so byte-equality covers the
/// member lists too (the generic dump in graph_opt_test.cpp covers the
/// node fields).
std::string dump_fused(const CompiledProgram& program) {
  std::ostringstream out;
  for (size_t t = 0; t < program.templates.size(); ++t) {
    const Template& tp = *program.templates[t];
    for (size_t i = 0; i < tp.nodes.size(); ++i) {
      for (const FusedMember& m : tp.nodes[i].fused) {
        out << t << ":" << i << " op=" << m.op_name << "#" << m.op_index
            << " orig=" << m.orig_node << " in=[";
        for (uint32_t s : m.inputs) out << s << ",";
        out << "]\n";
      }
    }
  }
  return out.str();
}

TEST(Fusion, SecondOptimizationIsANoOp) {
  ScopedEnv env(kFusionEnv);
  auto [program, first] = graph_optimized(
      "f(x) mul(add(incr(x), 1), 2)\n"
      "g(x) let <a, b> = <incr(x), 7> in add(a, b)\n"
      "main() add(f(5), g(3))");
  EXPECT_GT(first.chains_fused, 0u);
  EXPECT_GT(first.tuples_elided, 0u);
  const std::string before = dump_fused(program);
  const size_t nodes = program.total_nodes();
  GraphOptStats again = optimize_graphs(program, registry());
  EXPECT_EQ(again.total(), 0u);
  EXPECT_EQ(program.total_nodes(), nodes);
  EXPECT_EQ(dump_fused(program), before);
}

// ---------------------------------------------------------------------------
// Tuple-plumbing elision
// ---------------------------------------------------------------------------

TEST(TupleElision, ElidesStaticallyMatchedMakeAndGets) {
  ScopedEnv env(kFusionEnv);
  auto [program, stats] = graph_optimized(
      "f(x) let <a, b> = <incr(x), 7> in add(a, b)\nmain() f(3)");
  EXPECT_EQ(stats.tuples_elided, 1u);
  EXPECT_EQ(count_kind(program, NodeKind::kTupleMake), 0u);
  EXPECT_EQ(count_kind(program, NodeKind::kTupleGet), 0u);
  EXPECT_GT(stats.slots_reclaimed, 0u);
  EXPECT_EQ(validate_graph(program), "");
  EXPECT_EQ(run_int(program), 11);  // incr(3) + 7
}

TEST(TupleElision, NonGetConsumerPreservesTheTuple) {
  ScopedEnv env(kFusionEnv);
  // The package escapes (it is f's return value), so the make survives.
  auto [program, stats] = graph_optimized("f(x) <incr(x), 7>\nmain() f(3)");
  EXPECT_EQ(stats.tuples_elided, 0u);
  EXPECT_EQ(count_kind(program, NodeKind::kTupleMake), 1u);
}

TEST(TupleElision, KillSwitchKeepsTheTupleNodes) {
  ScopedEnv env(kFusionEnv);
  env.set("DELIRIUM_FACTS_TUPLES", "0");
  auto [program, stats] = graph_optimized(
      "f(x) let <a, b> = <incr(x), 7> in add(a, b)\nmain() f(3)");
  EXPECT_EQ(stats.tuples_elided, 0u);
  EXPECT_EQ(count_kind(program, NodeKind::kTupleMake), 1u);
  EXPECT_EQ(count_kind(program, NodeKind::kTupleGet), 2u);
  EXPECT_EQ(run_int(program), 11);
}

// ---------------------------------------------------------------------------
// Verifier coverage of the fused invariants
// ---------------------------------------------------------------------------

std::string corrupt_and_report(const std::string& source,
                               void (*mutate)(Node&)) {
  CompileOptions options;
  options.optimize = false;
  CompiledProgram program = compile_or_throw(source, registry(), options);
  optimize_graphs(program, registry());
  for (auto& t : program.templates) {
    for (Node& n : t->nodes) {
      if (n.kind == NodeKind::kFused) {
        mutate(n);
        std::string report = validate_graph(program);
        if (report.empty()) report = verify_report(verify_graphs(program, registry()));
        return report;
      }
    }
  }
  ADD_FAILURE() << "no fused node produced";
  return "";
}

TEST(FusionVerify, DetectsEmptyMemberList) {
  ScopedEnv env(kFusionEnv);
  const std::string report = corrupt_and_report(
      "f(x) mul(add(incr(x), 1), 2)\nmain() f(5)", [](Node& n) { n.fused.clear(); });
  EXPECT_NE(report.find("fused"), std::string::npos) << report;
}

TEST(FusionVerify, DetectsImpureMember) {
  ScopedEnv env(kFusionEnv);
  const std::string report = corrupt_and_report(
      "f(x) mul(add(incr(x), 1), 2)\nmain() f(5)", [](Node& n) {
        // Same arity, so the impurity check is what fires.
        n.fused[1].op_name = "effectful2";
        n.fused[1].op_index = registry().index_of("effectful2");
      });
  EXPECT_NE(report.find("impure"), std::string::npos) << report;
}

TEST(FusionVerify, DetectsBrokenExternalSlotCoverage) {
  ScopedEnv env(kFusionEnv);
  const std::string report = corrupt_and_report(
      "f(x) mul(add(incr(x), 1), 2)\nmain() f(5)",
      [](Node& n) { n.fused[0].inputs[0] = 99; });
  EXPECT_NE(report.find("fused"), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// Equivalence: fused vs unfused across the executor matrix
// ---------------------------------------------------------------------------

std::string scrub_digits(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c >= '0' && c <= '9') c = '#';
  }
  return out;
}

/// Compile `source` twice — fusion + elision on, then both off — and
/// prove the two programs agree on values, fault behavior, and
/// (digit-scrubbed, node ids shift) error text across the whole
/// executor matrix; each program additionally proves byte-identical
/// reports and trace-multiset determinism across the matrix inside
/// expect_equivalent.
CompileResult expect_fusion_preserves(const std::string& source, int max_retries = 0) {
  CompileOptions options;
  options.opt.inline_expansion = false;
  CompileResult fused = compile_source("<fused>", source, registry(), options);
  EXPECT_TRUE(fused.ok) << fused.diagnostics;
  if (!fused.ok) return fused;

  CompiledProgram plain = [&] {
    ScopedEnv env({"DELIRIUM_FACTS_FUSE", "DELIRIUM_FACTS_TUPLES"});
    env.set("DELIRIUM_FACTS_FUSE", "0");
    env.set("DELIRIUM_FACTS_TUPLES", "0");
    CompileResult r = compile_source("<plain>", source, registry(), options);
    EXPECT_TRUE(r.ok) << r.diagnostics;
    return std::move(r.program);
  }();

  testing::ExecutorFixture fixture(registry());
  fixture.config().max_retries = max_retries;
  const testing::ExecutorOutcome a = fixture.expect_equivalent(fused.program);
  const testing::ExecutorOutcome b = fixture.expect_equivalent(plain);
  EXPECT_EQ(a.faulted(), b.faulted());
  if (a.faulted() && b.faulted()) {
    EXPECT_EQ(scrub_digits(a.error_text), scrub_digits(b.error_text));
    EXPECT_EQ(a.stats.faults_raised, b.stats.faults_raised);
  } else if (!a.faulted() && !b.faulted()) {
    EXPECT_TRUE(deep_equal(a.value, b.value));
    EXPECT_EQ(a.stats.retries, b.stats.retries);
    EXPECT_EQ(a.stats.faults_injected, b.stats.faults_injected);
  }
  return fused;
}

TEST(FusionEquivalence, FusedChainsProduceIdenticalValuesEverywhere) {
  ScopedEnv env(kFusionEnv);
  CompileResult r = expect_fusion_preserves(R"(
step(x) mul(add(incr(x), 1), 2)
f(n) if less_than(n, 1) then 0 else add(step(n), f(sub(n, 1)))
main() f(6)
)");
  // The rewrite actually fired: this compares fused against unfused,
  // not two identical programs.
  EXPECT_GT(r.graph_opt_stats.chains_fused, 0u);
}

TEST(FusionEquivalence, ElidedTuplesProduceIdenticalValuesEverywhere) {
  ScopedEnv env(kFusionEnv);
  CompileResult r = expect_fusion_preserves(R"(
step(x) let <a, b> = <incr(x), 7> in add(a, b)
f(n) if less_than(n, 1) then 0 else add(step(n), f(sub(n, 1)))
main() f(6)
)");
  EXPECT_GT(r.graph_opt_stats.tuples_elided, 0u);
}

TEST(FusionEquivalence, InjectedFaultInsideChainMatchesUnfused) {
  ScopedEnv env(kFusionEnv);
  // `add` sits in the middle of the fused chain; the fault report must
  // name the member operator with the same text the unfused graph
  // produces (modulo shifted node ids).
  env.set("DELIRIUM_INJECT_FAULTS", "add:throw");
  CompileResult r = expect_fusion_preserves(
      "main() mul(add(incr(effectful(1)), 1), 2)");
  EXPECT_GT(r.graph_opt_stats.chains_fused, 0u);
}

TEST(FusionEquivalence, RetryInsideChainRecoversWithEqualCounters) {
  ScopedEnv env(kFusionEnv);
  // Transient fault on a mid-chain member: the member retries in place
  // (arguments snapshotted before the attempt) and the chain completes.
  env.set("DELIRIUM_INJECT_FAULTS", "add:throw:fail_attempts=1");
  CompileResult r = expect_fusion_preserves(
      "main() mul(add(incr(effectful(1)), 1), 2)", /*max_retries=*/2);
  EXPECT_GT(r.graph_opt_stats.chains_fused, 0u);

  testing::ExecutorFixture fixture(registry());
  fixture.config().max_retries = 2;
  const testing::ExecutorOutcome ref = fixture.expect_equivalent(r.program);
  ASSERT_FALSE(ref.faulted()) << ref.error_text;
  EXPECT_EQ(ref.value.as_int(), 6);  // ((1+1)+1)*2
  EXPECT_EQ(ref.stats.retries, 1u);
  EXPECT_EQ(ref.stats.faults_injected, 1u);
  EXPECT_EQ(ref.stats.faults_raised, 0u);
}

TEST(FusionEquivalence, ExhaustedRetriesReportTheMemberOperator) {
  ScopedEnv env(kFusionEnv);
  // Injected faults are transient by default (fail_attempts=1): pin the
  // failure past the retry budget so the fault genuinely surfaces.
  env.set("DELIRIUM_INJECT_FAULTS", "add:throw:fail_attempts=10");
  CompileResult r = expect_fusion_preserves(
      "main() mul(add(incr(effectful(1)), 1), 2)", /*max_retries=*/1);
  EXPECT_GT(r.graph_opt_stats.chains_fused, 0u);

  testing::ExecutorFixture fixture(registry());
  fixture.config().max_retries = 1;
  const testing::ExecutorOutcome ref = fixture.expect_equivalent(r.program);
  ASSERT_TRUE(ref.faulted());
  EXPECT_NE(ref.error_text.find("add"), std::string::npos) << ref.error_text;
  EXPECT_NE(ref.error_text.find("coordination stack:"), std::string::npos)
      << ref.error_text;
  EXPECT_EQ(ref.stats.retries_exhausted, 1u);
}

// ---------------------------------------------------------------------------
// kTupleGet decomposition fast path (satellite): when a package crosses
// a call boundary the static elision cannot fire, and the runtime's
// kTupleGet decomposition does the unpacking — under faults and retries
// it must behave identically across the matrix.
// ---------------------------------------------------------------------------

constexpr const char* kCrossCallTuple = R"(
pair(x) <incr(x), effectful(x)>
main() let <a, b> = pair(3) in add(a, b)
)";

CompiledProgram compile_cross_call_tuple() {
  CompileOptions options;
  options.opt.inline_expansion = false;
  CompiledProgram program = compile_or_throw(kCrossCallTuple, registry(), options);
  // The premise of these tests: the gets survive optimization because
  // the make lives in the callee.
  size_t gets = 0;
  for (const auto& t : program.templates) {
    for (const Node& n : t->nodes) gets += n.kind == NodeKind::kTupleGet ? 1 : 0;
  }
  EXPECT_EQ(gets, 2u);
  return program;
}

TEST(TupleGetFastPath, DecomposesDeliveredTupleEverywhere) {
  ScopedEnv env(kFusionEnv);
  testing::ExecutorFixture fixture(registry());
  const testing::ExecutorOutcome ref =
      fixture.expect_equivalent(compile_cross_call_tuple());
  ASSERT_FALSE(ref.faulted()) << ref.error_text;
  EXPECT_EQ(ref.value.as_int(), 7);  // incr(3) + 3
}

TEST(TupleGetFastPath, TransientFaultBeforeTheTupleRetriesAndRecovers) {
  ScopedEnv env(kFusionEnv);
  env.set("DELIRIUM_INJECT_FAULTS", "incr:throw:fail_attempts=1");
  testing::ExecutorFixture fixture(registry());
  fixture.config().max_retries = 2;
  const testing::ExecutorOutcome ref =
      fixture.expect_equivalent(compile_cross_call_tuple());
  ASSERT_FALSE(ref.faulted()) << ref.error_text;
  EXPECT_EQ(ref.value.as_int(), 7);
  EXPECT_EQ(ref.stats.retries, 1u);
  EXPECT_EQ(ref.stats.faults_raised, 0u);
}

TEST(TupleGetFastPath, PermanentFaultReportsIdenticallyEverywhere) {
  ScopedEnv env(kFusionEnv);
  env.set("DELIRIUM_INJECT_FAULTS", "effectful:throw");
  testing::ExecutorFixture fixture(registry());
  const testing::ExecutorOutcome ref =
      fixture.expect_equivalent(compile_cross_call_tuple());
  ASSERT_TRUE(ref.faulted());
  EXPECT_NE(ref.error_text.find("effectful"), std::string::npos) << ref.error_text;
}

}  // namespace
}  // namespace delirium
