// Recursion, closures, first-class functions, and iterate — the dynamic
// subgraph-expansion machinery (§3 and §7 of the paper).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::eval;
using testing::eval_int;

TEST(Recursion, Factorial) {
  EXPECT_EQ(eval_int(R"(
    fact(n)
      if less_than(n, 2)
        then 1
        else mul(n, fact(decr(n)))
    main() fact(10)
  )"),
            3628800);
}

TEST(Recursion, Fibonacci) {
  // Tree recursion: exposes a lot of parallelism.
  EXPECT_EQ(eval_int(R"(
    fib(n)
      if less_than(n, 2)
        then n
        else add(fib(sub(n, 1)), fib(sub(n, 2)))
    main() fib(15)
  )",
                     4),
            610);
}

TEST(Recursion, MutualRecursion) {
  EXPECT_EQ(eval_int(R"(
    is_even(n) if is_equal(n, 0) then 1 else is_odd(decr(n))
    is_odd(n) if is_equal(n, 0) then 0 else is_even(decr(n))
    main() is_even(20)
  )"),
            1);
}

TEST(Recursion, DeepTailRecursionRunsInBoundedActivationSpace) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(R"(
    count(n, acc)
      if is_equal(n, 0)
        then acc
        else count(decr(n), incr(acc))
    main() count(50000, 0)
  )",
                                             *reg);
  Runtime runtime(*reg, {.num_workers = 2});
  EXPECT_EQ(runtime.run(program).as_int(), 50000);
  // Tail calls forward the continuation: live activations must stay far
  // below the 50k iterations (constant-factor bound).
  EXPECT_LT(runtime.last_stats().peak_live_activations, 100u);
}

TEST(Recursion, LocalFunctionClosesOverBinding) {
  EXPECT_EQ(eval_int(R"(
    main()
      let base = 100
          addb(x) add(x, base)
      in addb(23)
  )"),
            123);
}

TEST(Recursion, LocalFunctionUsedTwice) {
  EXPECT_EQ(eval_int(R"(
    main()
      let f(x) mul(x, 3)
      in add(f(1), f(2))
  )"),
            9);
}

TEST(Recursion, RecursiveLocalFunction) {
  // The base case lives in a conditional branch: the self-reference must
  // be re-exported into the branch template.
  EXPECT_EQ(eval_int(R"(
    main()
      let step = 2
          upto(n) if is_equal(n, 0) then 0 else add(step, upto(decr(n)))
      in upto(10)
  )"),
            20);
}

TEST(Recursion, FunctionPassedAsArgument) {
  EXPECT_EQ(eval_int(R"(
    apply_twice(f, x) f(f(x))
    bump(x) add(x, 10)
    main() apply_twice(bump, 1)
  )"),
            21);
}

TEST(Recursion, FunctionReturnedAsValue) {
  EXPECT_EQ(eval_int(R"(
    pick(which)
      let inc1(x) add(x, 1)
          inc2(x) add(x, 2)
      in if which then inc1 else inc2
    main() (pick(0))(40)
  )"),
            42);
}

TEST(Recursion, ClosureCapturesAtCreationTime) {
  EXPECT_EQ(eval_int(R"(
    make_adder(k)
      let addk(x) add(x, k)
      in addk
    main()
      let a5 = make_adder(5)
          a9 = make_adder(9)
      in add(a5(0), a9(0))
  )"),
            14);
}

TEST(Recursion, ClosureCallArityMismatchIsRuntimeError) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(R"(
    apply1(f) f(1, 2)
    bump(x) add(x, 1)
    main() apply1(bump)
  )",
                                             *reg);
  Runtime runtime(*reg, {.num_workers = 2});
  EXPECT_THROW(runtime.run(program), RuntimeError);
}

TEST(Iterate, CountsToTen) {
  EXPECT_EQ(eval_int(R"(
    main()
      iterate {
        i = 0, incr(i)
      } while is_not_equal(i, 10), result i
  )"),
            10);
}

TEST(Iterate, AccumulatesAcrossIterations) {
  // sum of 1..10 via two loop variables.
  EXPECT_EQ(eval_int(R"(
    main()
      iterate {
        i = 0, incr(i)
        total = 0, add(total, incr(i))
      } while is_not_equal(i, 10), result total
  )"),
            55);
}

TEST(Iterate, StepsSeeConsistentIterationState) {
  // Both steps read the same pre-step values of (a, b): a swap must work.
  EXPECT_EQ(eval_int(R"(
    main()
      iterate {
        n = 0, incr(n)
        a = 1, b
        b = 2, a
      } while is_not_equal(n, 3), result a
  )"),
            2);  // after 3 swaps: a=2
}

TEST(Iterate, ZeroIterationsWhenConditionInitiallyFalse) {
  EXPECT_EQ(eval_int(R"(
    main()
      iterate {
        i = 7, incr(i)
      } while 0, result i
  )"),
            7);
}

TEST(Iterate, UsesEnclosingBindings) {
  EXPECT_EQ(eval_int(R"(
    main()
      let limit = 5
          stride = 3
      in iterate {
           i = 0, incr(i)
           acc = 0, add(acc, stride)
         } while is_not_equal(i, limit), result acc
  )"),
            15);
}

TEST(Iterate, NestedIterate) {
  // 3x4 nested loops through a helper function.
  EXPECT_EQ(eval_int(R"(
    inner(base)
      iterate {
        j = 0, incr(j)
        acc = base, incr(acc)
      } while is_not_equal(j, 4), result acc
    main()
      iterate {
        i = 0, incr(i)
        total = 0, inner(total)
      } while is_not_equal(i, 3), result total
  )"),
            12);
}

TEST(Iterate, ManyIterationsBoundedActivations) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(R"(
    main()
      iterate {
        i = 0, incr(i)
      } while is_not_equal(i, 100000), result i
  )",
                                             *reg);
  Runtime runtime(*reg, {.num_workers = 2});
  EXPECT_EQ(runtime.run(program).as_int(), 100000);
  EXPECT_LT(runtime.last_stats().peak_live_activations, 100u);
}

TEST(Recursion, EightQueensFromThePaper) {
  // The §3 program, verbatim structure, with its ~100 lines of C
  // operators. Boards are blocks: vectors of queen positions.
  using Board = std::vector<int8_t>;
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("empty_board", 0, [](OpContext&) { return Value::block(Board{}); }).pure();
  reg.add("add_queen", 3, [](OpContext& ctx) {
    Board board = ctx.arg_block<Board>(0);  // copy, then extend
    (void)ctx.arg_int(1);                   // queen number == column
    board.push_back(static_cast<int8_t>(ctx.arg_int(2)));
    return Value::block(std::move(board));
  }).pure();
  reg.add("is_valid", 1, [](OpContext& ctx) {
    const Board& b = ctx.arg_block<Board>(0);
    const int last = static_cast<int>(b.size()) - 1;
    for (int i = 0; i < last; ++i) {
      const int dr = last - i;
      if (b[i] == b[last] || b[i] == b[last] - dr || b[i] == b[last] + dr) {
        return Value::of(int64_t{0});
      }
    }
    return Value::of(int64_t{1});
  }).pure();
  reg.add("merge", 8, [](OpContext& ctx) {
    // Merge: collect non-NULL results into a list-of-boards block.
    std::vector<Board> all;
    for (size_t i = 0; i < 8; ++i) {
      const Value& v = ctx.arg(i);
      if (v.is_null()) continue;
      if (v.kind() == Value::Kind::kBlock) {
        // Either a single solved board or a list of boards.
        if (const auto* list = dynamic_cast<const TypedBlock<std::vector<Board>>*>(
                v.block_ptr().get())) {
          all.insert(all.end(), list->data.begin(), list->data.end());
        } else {
          all.push_back(v.block_as<Board>());
        }
      }
    }
    return Value::block(std::move(all));
  }).pure();
  reg.add("show_solutions", 1, [](OpContext& ctx) {
    const auto& all = ctx.arg_block<std::vector<Board>>(0);
    return Value::of(static_cast<int64_t>(all.size()));
  }).pure();

  const std::string source = R"(
    main()
      let board = empty_board()
      in show_solutions(do_it(board, 1))

    do_it(board, queen)
      let h1 = try(board, queen, 1)
          h2 = try(board, queen, 2)
          h3 = try(board, queen, 3)
          h4 = try(board, queen, 4)
          h5 = try(board, queen, 5)
          h6 = try(board, queen, 6)
          h7 = try(board, queen, 7)
          h8 = try(board, queen, 8)
      in merge(h1, h2, h3, h4, h5, h6, h7, h8)

    try(board, queen, location)
      let new_board = add_queen(board, queen, location)
      in if is_valid(new_board)
          then if is_equal(queen, 8)
                then new_board
                else do_it(new_board, incr(queen))
          else NULL
  )";
  // 8 queens has exactly 92 solutions.
  for (int workers : {1, 4}) {
    EXPECT_EQ(testing::compile_and_run(source, reg, workers).as_int(), 92)
        << "workers=" << workers;
  }
}

}  // namespace
}  // namespace delirium
