// Deterministic fault handling: structured FaultInfo provenance, seeded
// fault injection, retry policies with pre-image snapshots, watchdog
// stall detection, and the stranded-activation deadlock diagnostic.
//
// Tests that execute a runtime clear DELIRIUM_INJECT_FAULTS and
// DELIRIUM_RETRIES first (ScopedEnv): the CI fault-injection job exports
// both suite-wide, and these tests assert exact fault counters under
// plans they install themselves.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/sim.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ScopedEnv;

std::shared_ptr<const FaultPlan> plan_of(const std::string& spec) {
  return std::make_shared<const FaultPlan>(FaultPlan::parse(spec));
}

// ---------------------------------------------------------------------------
// FaultPlan parsing and selector semantics
// ---------------------------------------------------------------------------

TEST(FaultPlan_, ParsesClausesAndSelectors) {
  const FaultPlan plan =
      FaultPlan::parse("convolve:throw:every=7:seed=42,post:stall=1000000:nth=3,"
                       "*:corrupt:fail_attempts=2");
  ASSERT_EQ(plan.rules().size(), 3u);

  const FaultRule& a = plan.rules()[0];
  EXPECT_EQ(a.op, "convolve");
  EXPECT_FALSE(a.wildcard);
  EXPECT_EQ(a.action, FaultAction::kThrow);
  EXPECT_EQ(a.every, 7u);
  EXPECT_EQ(a.seed, 42u);
  EXPECT_EQ(a.fail_attempts, 1u);

  const FaultRule& b = plan.rules()[1];
  EXPECT_EQ(b.action, FaultAction::kStall);
  EXPECT_EQ(b.stall_ns, 1000000);
  EXPECT_EQ(b.nth, 3u);

  const FaultRule& c = plan.rules()[2];
  EXPECT_TRUE(c.wildcard);
  EXPECT_EQ(c.action, FaultAction::kCorrupt);
  EXPECT_EQ(c.fail_attempts, 2u);
}

TEST(FaultPlan_, RejectsMalformedSpecs) {
  for (const char* bad : {
           "",                      // no clauses
           "work",                  // no action
           "work:nth=1",            // selector without action
           ":throw",                // no operator name
           "work:throw:nth=0",      // nth is 1-based
           "work:throw:every=0",    // every=0
           "work:throw:nth=1:every=2",  // mixed selectors
           "work:bogus",            // unknown field
           "work:throw:every=x",    // bad number
           "work:throw,,other:throw",  // empty clause
       }) {
    EXPECT_THROW(FaultPlan::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(FaultPlan_, DecideMatchesWildcardOnlyForPureOperators) {
  // The wildcard targets the retry-eligible (pure) set, so a blanket
  // plan plus retries leaves results unchanged — the CI job's contract.
  const FaultPlan any = FaultPlan::parse("*:throw");
  EXPECT_EQ(any.decide("anything", /*op_pure=*/true, 1, 2, 0, 0).action,
            FaultAction::kThrow);
  EXPECT_EQ(any.decide("anything", /*op_pure=*/false, 1, 2, 0, 0).action,
            FaultAction::kNone);

  const FaultPlan named = FaultPlan::parse("work:throw:fail_attempts=2");
  EXPECT_EQ(named.decide("work", false, 1, 2, 0, 0).action, FaultAction::kThrow);
  EXPECT_EQ(named.decide("work", false, 1, 2, 0, 1).action, FaultAction::kThrow);
  EXPECT_EQ(named.decide("work", false, 1, 2, 0, 2).action, FaultAction::kNone);
  EXPECT_EQ(named.decide("other", true, 1, 2, 0, 0).action, FaultAction::kNone);

  const FaultPlan nth = FaultPlan::parse("work:throw:nth=3");
  EXPECT_EQ(nth.decide("work", true, 1, 2, /*arrival=*/2, 0).action,
            FaultAction::kThrow);
  EXPECT_EQ(nth.decide("work", true, 1, 2, /*arrival=*/1, 0).action,
            FaultAction::kNone);
}

// ---------------------------------------------------------------------------
// Injection provenance and actions
// ---------------------------------------------------------------------------

/// Registry with a pure custom operator `work(x) = 2x`. Custom operators
/// have no fold callback, so the optimizer cannot erase the fault site.
std::shared_ptr<OperatorRegistry> work_registry() {
  auto reg = testing::builtin_registry();
  reg->add("work", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0) * 2); })
      .pure();
  return reg;
}

TEST(FaultInjection, InjectedFaultCarriesProvenance) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = work_registry();
  reg->set_fault_plan(plan_of("work:throw"));
  CompiledProgram program = compile_or_throw("main() work(21)", *reg);
  Runtime runtime(*reg, {.num_workers = 2});
  try {
    runtime.run(program);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_TRUE(e.fault().injected);
    EXPECT_EQ(e.fault().op, "work");
    EXPECT_EQ(e.fault().tmpl, "main");
    const std::string what = e.what();
    EXPECT_NE(what.find("injected fault in operator 'work'"), std::string::npos) << what;
    EXPECT_NE(what.find("coordination stack:"), std::string::npos) << what;
  }
  const RunStats s = runtime.last_stats();
  EXPECT_EQ(s.faults_injected, 1u);
  EXPECT_EQ(s.faults_raised, 1u);
  EXPECT_EQ(s.retries, 0u);
}

TEST(FaultInjection, CorruptReplacesResultWithEmptyPackage) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("pair", 1, [](OpContext& ctx) {
       const int64_t v = ctx.arg_int(0);
       return Value::tuple({Value::of(v), Value::of(v + 1)});
     })
      .pure();
  CompiledProgram program = compile_or_throw("main() package_size(pair(1))", *reg);

  Runtime clean(*reg, {.num_workers = 2});
  EXPECT_EQ(clean.run(program).as_int(), 2);

  reg->set_fault_plan(plan_of("pair:corrupt"));
  Runtime corrupted(*reg, {.num_workers = 2});
  EXPECT_EQ(corrupted.run(program).as_int(), 0);
  EXPECT_EQ(corrupted.last_stats().faults_injected, 1u);
  EXPECT_EQ(corrupted.last_stats().faults_raised, 0u);
}

TEST(FaultInjection, StallDelaysButSucceeds) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = work_registry();
  reg->set_fault_plan(plan_of("work:stall=2000000"));  // 2 ms
  CompiledProgram program = compile_or_throw("main() work(21)", *reg);
  Runtime runtime(*reg, {.num_workers = 2});
  EXPECT_EQ(runtime.run(program).as_int(), 42);
  EXPECT_EQ(runtime.last_stats().faults_injected, 1u);
  EXPECT_EQ(runtime.last_stats().faults_raised, 0u);
}

// ---------------------------------------------------------------------------
// Retry policies
// ---------------------------------------------------------------------------

TEST(FaultRetry, RecoversFromTransientInjectedFault) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = work_registry();
  reg->set_fault_plan(plan_of("work:throw:fail_attempts=2"));
  CompiledProgram program = compile_or_throw("main() work(21)", *reg);
  RuntimeConfig config;
  config.num_workers = 2;
  config.max_retries = 3;
  Runtime runtime(*reg, config);
  EXPECT_EQ(runtime.run(program).as_int(), 42);
  const RunStats s = runtime.last_stats();
  EXPECT_EQ(s.retries, 2u);            // attempts 0 and 1 fail, 2 succeeds
  EXPECT_EQ(s.faults_injected, 2u);
  EXPECT_EQ(s.faults_raised, 0u);
  EXPECT_EQ(s.retries_exhausted, 0u);
}

TEST(FaultRetry, ExhaustionReportsTheFault) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = work_registry();
  reg->set_fault_plan(plan_of("work:throw:fail_attempts=99"));
  CompiledProgram program = compile_or_throw("main() work(21)", *reg);
  RuntimeConfig config;
  config.num_workers = 2;
  config.max_retries = 2;
  Runtime runtime(*reg, config);
  EXPECT_THROW(runtime.run(program), FaultError);
  const RunStats s = runtime.last_stats();
  EXPECT_EQ(s.retries, 2u);
  EXPECT_EQ(s.retries_exhausted, 1u);
  EXPECT_EQ(s.faults_injected, 3u);  // every attempt fired
  EXPECT_EQ(s.faults_raised, 1u);
}

/// make/smash: smash mutates its kUnique block argument *before*
/// throwing on the first call, so a correct retry must restore the
/// pre-image — a naive re-run would double the mutation.
std::shared_ptr<OperatorRegistry> snapshot_registry(std::shared_ptr<std::atomic<int>> calls) {
  auto reg = testing::builtin_registry();
  reg->add("make", 1, [](OpContext& ctx) {
       return Value::block(std::vector<int64_t>(static_cast<size_t>(ctx.arg_int(0)), 0));
     })
      .pure();
  reg->add("smash", 2, [calls](OpContext& ctx) -> Value {
       auto& v = ctx.arg_block_mut<std::vector<int64_t>>(0);
       v[0] += ctx.arg_int(1);
       if (calls->fetch_add(1) == 0) throw RuntimeError("transient smash failure");
       int64_t total = 0;
       for (int64_t x : v) total += x;
       return Value::of(total);
     })
      .destructive(0);
  return reg;
}

TEST(FaultRetry, RestoresDestructiveArgumentsFromSnapshot) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  const std::string source = "main() smash(make(4), 5)";

  {
    auto calls = std::make_shared<std::atomic<int>>(0);
    auto reg = snapshot_registry(calls);
    CompiledProgram program = compile_or_throw(source, *reg);
    RuntimeConfig config;
    config.num_workers = 1;
    config.max_retries = 1;
    Runtime runtime(*reg, config);
    // 5, not 10: the failed attempt's write was rolled back.
    EXPECT_EQ(runtime.run(program).as_int(), 5);
    EXPECT_EQ(runtime.last_stats().retries, 1u);
    EXPECT_EQ(runtime.last_stats().faults_raised, 0u);
  }

  {
    auto calls = std::make_shared<std::atomic<int>>(0);
    auto reg = snapshot_registry(calls);
    CompiledProgram program = compile_or_throw(source, *reg);
    SimConfig config;
    config.max_retries = 1;
    SimRuntime sim(*reg, config);
    const SimResult r = sim.run(program);
    EXPECT_EQ(r.result.as_int(), 5);
    EXPECT_EQ(r.stats.retries, 1u);
    EXPECT_EQ(r.stats.faults_raised, 0u);
  }
}

TEST(FaultRetry, DestructiveOpWithSharedArgumentIsNotRetried) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("make", 1, [](OpContext& ctx) {
       return Value::block(std::vector<int64_t>(static_cast<size_t>(ctx.arg_int(0)), 0));
     })
      .pure();
  reg->add("smash2", 2, [](OpContext&) -> Value {
       throw RuntimeError("smash2 fails");
     })
      .destructive(0);
  reg->add("read_sum", 1, [](OpContext& ctx) {
       int64_t total = 0;
       for (int64_t x : ctx.arg_block<std::vector<int64_t>>(0)) total += x;
       return Value::of(total);
     })
      .pure();
  // b has a second (read-only) consumer, so smash2's destructive edge is
  // not kUnique and the retry budget must stay 0.
  CompiledProgram program = compile_or_throw(R"(
    main()
      let b = make(2)
      in add(smash2(b, 3), read_sum(b))
  )",
                                             *reg);
  RuntimeConfig config;
  config.num_workers = 2;
  config.max_retries = 3;
  Runtime runtime(*reg, config);
  try {
    runtime.run(program);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.fault().op, "smash2");
    EXPECT_EQ(e.fault().message, "smash2 fails");
  }
  EXPECT_EQ(runtime.last_stats().retries, 0u);
  EXPECT_EQ(runtime.last_stats().retries_exhausted, 0u);
  EXPECT_EQ(runtime.last_stats().faults_raised, 1u);
}

// ---------------------------------------------------------------------------
// Drain semantics
// ---------------------------------------------------------------------------

TEST(FaultDrain, FaultWinsOverDeliveredResult) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("boom", 1, [](OpContext&) -> Value { throw RuntimeError("boom"); });
  // Unoptimized, so the dead faulting binding survives: the run both
  // delivers a result (2) and captures a fault — the fault must win.
  CompileOptions copts;
  copts.optimize = false;
  CompiledProgram program = compile_or_throw("main() let x = boom(1) in 2", *reg, copts);
  Runtime runtime(*reg, {.num_workers = 2});
  try {
    runtime.run(program);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.fault().message, "boom");
  }
}

// ---------------------------------------------------------------------------
// Watchdog and cancellation
// ---------------------------------------------------------------------------

TEST(FaultWatchdog, WallClockBudgetCancelsStalledRun) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("nap", 0, [](OpContext&) {
       std::this_thread::sleep_for(std::chrono::milliseconds(600));
       return Value::of(int64_t{1});
     })
      .pure();
  reg->add("sleepy", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); }).pure();
  CompiledProgram slow = compile_or_throw("main() sleepy(nap())", *reg);

  RuntimeConfig config;
  config.num_workers = 2;
  config.watchdog_budget_ms = 60;
  Runtime runtime(*reg, config);
  try {
    runtime.run(slow);
    FAIL() << "expected watchdog cancellation";
  } catch (const FaultError&) {
    FAIL() << "watchdog cancellation is not an operator fault";
  } catch (const RuntimeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog: no result within 60"), std::string::npos) << what;
    EXPECT_NE(what.find("stranded activations:"), std::string::npos) << what;
  }
  const RunStats s = runtime.last_stats();
  EXPECT_EQ(s.watchdog_fires, 1u);
  EXPECT_EQ(s.faults_raised, 0u);
  // sleepy was enqueued by nap's (post-cancellation) delivery and purged.
  EXPECT_GE(s.items_purged, 1u);

  // The cancelled runtime is fully reusable (no stuck workers, no stale
  // cancellation flag, counters reset per run).
  CompiledProgram clean = compile_or_throw("main() sleepy(40)", *reg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(runtime.run(clean).as_int(), 40);
    EXPECT_EQ(runtime.last_stats().watchdog_fires, 0u);
    EXPECT_EQ(runtime.last_stats().items_purged, 0u);
  }
}

TEST(FaultWatchdog, FailFastCancelsAndRuntimeStaysReusable) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("boom2", 1, [](OpContext&) -> Value { throw RuntimeError("boom2"); });
  reg->add("slowish", 1, [](OpContext& ctx) {
       std::this_thread::sleep_for(std::chrono::milliseconds(20));
       return Value::of(ctx.arg_int(0));
     })
      .pure();
  CompiledProgram faulty = compile_or_throw("main() add(boom2(1), slowish(2))", *reg);
  CompiledProgram clean = compile_or_throw("main() slowish(3)", *reg);

  RuntimeConfig config;
  config.num_workers = 2;
  config.fail_fast = true;
  Runtime runtime(*reg, config);
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(runtime.run(faulty), FaultError);
    EXPECT_GE(runtime.last_stats().faults_raised, 1u);
    EXPECT_EQ(runtime.run(clean).as_int(), 3);
    EXPECT_EQ(runtime.last_stats().faults_raised, 0u);
  }
}

TEST(FaultWatchdog, SimVirtualTimeBudgetIsDeterministic) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("slow_id", 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0)); }).pure();
  // A 10 ms *virtual* stall against a 0.1 ms virtual budget: the add
  // node's start time exceeds the budget, deterministically.
  reg->set_fault_plan(plan_of("slow_id:stall=10000000"));
  CompiledProgram program = compile_or_throw("main() add(slow_id(1), 1)", *reg);
  SimConfig config;
  config.num_procs = 2;
  config.watchdog_budget_ns = 100000;
  std::string first;
  for (int i = 0; i < 2; ++i) {
    SimRuntime sim(*reg, config);
    try {
      sim.run(program);
      FAIL() << "expected watchdog cancellation";
    } catch (const RuntimeError& e) {
      const std::string what = e.what();
      if (i == 0) {
        first = what;
        EXPECT_NE(what.find("watchdog: no result within 100000 virtual ns"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("stranded activations:"), std::string::npos) << what;
      } else {
        // Virtual time makes the whole report reproducible byte for byte.
        EXPECT_EQ(what, first);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Deadlock diagnostic
// ---------------------------------------------------------------------------

TEST(FaultDeadlock, DiagnosticEnumeratesStrandedNodes) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  CompileOptions copts;
  copts.optimize = false;  // keep the incr node foldable programs would lose
  CompiledProgram program = compile_or_throw("main() add(incr(1), 2)", *reg, copts);
  // Sever incr's output edge: add's port 0 is never fed, so the run
  // drains without a result — a dataflow deadlock.
  Template& t = *program.templates[program.entry];
  bool severed = false;
  for (Node& n : t.nodes) {
    if (n.op_name == "incr") {
      n.consumers.clear();
      severed = true;
    }
  }
  ASSERT_TRUE(severed);

  const auto check = [](const std::string& what) {
    EXPECT_NE(what.find("dataflow deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("stranded activations:"), std::string::npos) << what;
    EXPECT_NE(what.find("template 'main'"), std::string::npos) << what;
    EXPECT_NE(what.find("('add') missing 1 of 2 input(s)"), std::string::npos) << what;
  };

  Runtime runtime(*reg, {.num_workers = 2});
  try {
    runtime.run(program);
    FAIL() << "expected deadlock";
  } catch (const RuntimeError& e) {
    check(e.what());
  }

  SimRuntime sim(*reg, {});
  try {
    sim.run(program);
    FAIL() << "expected deadlock";
  } catch (const RuntimeError& e) {
    check(e.what());
  }
}

// ---------------------------------------------------------------------------
// Environment knobs
// ---------------------------------------------------------------------------

TEST(FaultEnv, InjectionPlanAndRetriesArePickedUpFromEnvironment) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  env.set("DELIRIUM_INJECT_FAULTS", "work:throw:fail_attempts=1");
  env.set("DELIRIUM_RETRIES", "2");
  auto reg = work_registry();  // no registry plan: env is the fallback
  CompiledProgram program = compile_or_throw("main() work(21)", *reg);

  Runtime runtime(*reg, {.num_workers = 2});
  EXPECT_EQ(runtime.run(program).as_int(), 42);
  EXPECT_EQ(runtime.last_stats().retries, 1u);
  EXPECT_EQ(runtime.last_stats().faults_injected, 1u);
  EXPECT_EQ(runtime.last_stats().faults_raised, 0u);

  SimRuntime sim(*reg, {});
  const SimResult r = sim.run(program);
  EXPECT_EQ(r.result.as_int(), 42);
  EXPECT_EQ(r.stats.retries, 1u);
  EXPECT_EQ(r.stats.faults_injected, 1u);
}

TEST(FaultEnv, MalformedEnvSpecFailsLoudly) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  env.set("DELIRIUM_INJECT_FAULTS", "work");  // no action
  auto reg = work_registry();
  CompiledProgram program = compile_or_throw("main() work(21)", *reg);
  Runtime runtime(*reg, {.num_workers = 1});
  // A silently-ignored injection spec would fake CI coverage; the run
  // must refuse to start instead.
  EXPECT_THROW(runtime.run(program), std::invalid_argument);
}

}  // namespace
}  // namespace delirium
