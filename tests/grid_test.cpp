// Grid relaxation app tests: bitwise equivalence between the sequential
// sweep, the hard-wired fork-join coordination, and the parmap variant.
#include <gtest/gtest.h>

#include "src/apps/grid/grid.h"
#include "src/delirium.h"

namespace delirium::grid {
namespace {

GridParams small_params() {
  GridParams p;
  p.width = 48;
  p.height = 48;
  p.bands = 4;
  p.steps = 6;
  p.seed = 3;
  return p;
}

TEST(GridModel, BoundaryStaysFixed) {
  GridParams p = small_params();
  const Grid grid = sequential_run(p);
  for (int x = 0; x < p.width; ++x) {
    EXPECT_EQ(grid.at(x, 0), 0.0f);
    EXPECT_EQ(grid.at(x, p.height - 1), 0.0f);
  }
  for (int y = 0; y < p.height; ++y) {
    EXPECT_EQ(grid.at(0, y), 0.0f);
    EXPECT_EQ(grid.at(p.width - 1, y), 0.0f);
  }
}

TEST(GridModel, HeatDiffusesButDoesNotAppear) {
  GridParams p = small_params();
  const Grid start = make_grid(p);
  const Grid end = sequential_run(p);
  double total_start = 0, total_end = 0;
  for (const auto& row : start.rows) {
    for (float v : row) total_start += v;
  }
  for (const auto& row : end.rows) {
    for (float v : row) total_end += v;
  }
  EXPECT_GT(total_start, 0);
  // Dirichlet boundary absorbs heat: the total can only shrink.
  EXPECT_LE(total_end, total_start);
  EXPECT_GT(total_end, 0);
}

TEST(GridModel, DeterministicPerSeed) {
  GridParams p = small_params();
  EXPECT_EQ(checksum(sequential_run(p)), checksum(sequential_run(p)));
  GridParams q = p;
  q.seed = 4;
  EXPECT_NE(checksum(sequential_run(p)), checksum(sequential_run(q)));
}

TEST(GridModel, RelaxBandMatchesFullRelax) {
  GridParams p = small_params();
  const Grid grid = make_grid(p);
  std::vector<std::vector<float>> full;
  relax_rows(grid, 0, p.height, full);

  const int rows = p.height / p.bands;
  for (int b = 0; b < p.bands; ++b) {
    Band band;
    band.row0 = b * rows;
    band.row1 = (b + 1) * rows;
    for (int y = band.row0; y < band.row1; ++y) {
      band.rows.push_back(grid.rows[static_cast<size_t>(y)]);
    }
    if (band.row0 > 0) band.halo_above = grid.rows[static_cast<size_t>(band.row0 - 1)];
    if (band.row1 < p.height) band.halo_below = grid.rows[static_cast<size_t>(band.row1)];
    relax_band(band, p.width, p.height);
    for (int y = band.row0; y < band.row1; ++y) {
      ASSERT_EQ(band.rows[static_cast<size_t>(y - band.row0)],
                full[static_cast<size_t>(y)])
          << "band " << b << " row " << y;
    }
  }
}

class GridParallel : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(GridParallel, MatchesSequentialBitwise) {
  const bool use_parmap = std::get<0>(GetParam());
  const int workers = std::get<1>(GetParam());
  GridParams p = small_params();
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_grid_operators(registry, p);
  const std::string source = use_parmap ? grid_source_parmap(p) : grid_source(p);
  CompiledProgram program = compile_or_throw(source, registry);
  Runtime runtime(registry, {.num_workers = workers});
  Value result = runtime.run(program);
  const Grid& parallel = result.block_as<Grid>();
  const Grid sequential = sequential_run(p);
  ASSERT_EQ(parallel.rows.size(), sequential.rows.size());
  EXPECT_EQ(parallel.rows, sequential.rows);  // bitwise
}

std::string grid_param_name(const ::testing::TestParamInfo<std::tuple<bool, int>>& info) {
  return std::string(std::get<0>(info.param) ? "Parmap" : "Classic") + "Workers" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Variants, GridParallel,
                         ::testing::Combine(::testing::Bool(), ::testing::Values(1, 3, 4)),
                         grid_param_name);

TEST(GridParallelProperties, ClassicVersionHasNoCowCopies) {
  GridParams p = small_params();
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_grid_operators(registry, p);
  CompiledProgram program = compile_or_throw(grid_source(p), registry);
  Runtime runtime(registry, {.num_workers = 4});
  runtime.run(program);
  EXPECT_EQ(runtime.last_stats().cow_copies, 0u);
}

TEST(GridParallelProperties, ParmapVersionWorksAtOddBandCounts) {
  GridParams p = small_params();
  p.bands = 6;
  p.height = 48;  // divisible by 6
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_grid_operators(registry, p);
  CompiledProgram program = compile_or_throw(grid_source_parmap(p), registry);
  Runtime runtime(registry, {.num_workers = 4});
  Value result = runtime.run(program);
  EXPECT_EQ(result.block_as<Grid>().rows, sequential_run(p).rows);
}

}  // namespace
}  // namespace delirium::grid
