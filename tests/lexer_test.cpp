// Lexer unit tests: token kinds, literals, comments, and error recovery.
#include <gtest/gtest.h>

#include <memory>

#include "src/lang/lexer.h"
#include "src/support/diagnostics.h"
#include "src/support/source.h"

namespace delirium {
namespace {

std::vector<Token> lex(const std::string& text, DiagnosticEngine* diags_out = nullptr) {
  // Token::text is a view into the SourceFile buffer, so the file must
  // outlive the returned tokens.
  static std::vector<std::unique_ptr<SourceFile>> keep_alive;
  keep_alive.push_back(std::make_unique<SourceFile>("<test>", text));
  DiagnosticEngine diags;
  auto tokens = Lexer(*keep_alive.back(), diags).lex_all();
  if (diags_out != nullptr) *diags_out = std::move(diags);
  return tokens;
}

std::vector<TokenKind> kinds(const std::string& text) {
  std::vector<TokenKind> out;
  for (const Token& t : lex(text)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(Lexer, Punctuation) {
  EXPECT_EQ(kinds("( ) { } < > , ="),
            (std::vector<TokenKind>{TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBrace,
                                    TokenKind::kRBrace, TokenKind::kLAngle, TokenKind::kRAngle,
                                    TokenKind::kComma, TokenKind::kEquals, TokenKind::kEof}));
}

TEST(Lexer, Keywords) {
  EXPECT_EQ(kinds("let in if then else iterate while result define NULL"),
            (std::vector<TokenKind>{TokenKind::kLet, TokenKind::kIn, TokenKind::kIf,
                                    TokenKind::kThen, TokenKind::kElse, TokenKind::kIterate,
                                    TokenKind::kWhile, TokenKind::kResult, TokenKind::kDefine,
                                    TokenKind::kNull, TokenKind::kEof}));
}

TEST(Lexer, KeywordsArePrefixSensitive) {
  const auto tokens = lex("letter inner if_else");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdent);
}

TEST(Lexer, IntegerLiterals) {
  const auto tokens = lex("0 42 123456789");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 123456789);
}

TEST(Lexer, NegativeLiterals) {
  const auto tokens = lex("-7 -2.5");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[0].int_value, -7);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, -2.5);
}

TEST(Lexer, FloatLiterals) {
  const auto tokens = lex("3.25 1e6 2.5e-3");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLit);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 3.25);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 1e6);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 2.5e-3);
}

TEST(Lexer, DotWithoutDigitIsNotAFloat) {
  // "1." should lex as int then error (no postfix dot token exists).
  DiagnosticEngine diags;
  const auto tokens = lex("1.x", &diags);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_TRUE(diags.has_errors());  // '.' is not a valid token
}

TEST(Lexer, IdentifierFollowedByExponentLikeSuffix) {
  // "1e" with no digits: the 'e' starts an identifier.
  const auto tokens = lex("1e");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLit);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "e");
}

TEST(Lexer, StringLiteralsWithEscapes) {
  const auto tokens = lex(R"("hello" "a\nb" "q\"q" "back\\slash")");
  EXPECT_EQ(tokens[0].str_value, "hello");
  EXPECT_EQ(tokens[1].str_value, "a\nb");
  EXPECT_EQ(tokens[2].str_value, "q\"q");
  EXPECT_EQ(tokens[3].str_value, "back\\slash");
}

TEST(Lexer, UnterminatedStringIsError) {
  DiagnosticEngine diags;
  const auto tokens = lex("\"oops", &diags);
  EXPECT_EQ(tokens[0].kind, TokenKind::kError);
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, LineComments) {
  EXPECT_EQ(kinds("a -- this is a comment\nb // also a comment\nc"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kIdent, TokenKind::kIdent,
                                    TokenKind::kEof}));
}

TEST(Lexer, MinusWithoutDigitIsError) {
  DiagnosticEngine diags;
  lex("a - b", &diags);
  EXPECT_TRUE(diags.has_errors());  // Delirium has no infix operators
}

TEST(Lexer, UnknownCharacterProducesErrorAndContinues) {
  DiagnosticEngine diags;
  const auto tokens = lex("a @ b", &diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
  EXPECT_EQ(tokens.size(), 4u);  // a, error, b, eof
}

TEST(Lexer, TokenRangesPointIntoSource) {
  SourceFile file("<test>", "foo bar");
  DiagnosticEngine diags;
  const auto tokens = Lexer(file, diags).lex_all();
  EXPECT_EQ(file.line_col(tokens[0].range.begin).col, 1u);
  EXPECT_EQ(file.line_col(tokens[1].range.begin).col, 5u);
}

TEST(Lexer, MultiLinePositions) {
  SourceFile file("<test>", "a\n  b\n    c");
  DiagnosticEngine diags;
  const auto tokens = Lexer(file, diags).lex_all();
  EXPECT_EQ(file.line_col(tokens[1].range.begin).line, 2u);
  EXPECT_EQ(file.line_col(tokens[1].range.begin).col, 3u);
  EXPECT_EQ(file.line_col(tokens[2].range.begin).line, 3u);
  EXPECT_EQ(file.line_col(tokens[2].range.begin).col, 5u);
}

}  // namespace
}  // namespace delirium
