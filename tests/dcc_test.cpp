// Case study #2 tests: the Delirium-coordinated compiler must accept the
// same programs as the sequential driver and produce graphs that execute
// to the same values, at any worker count.
#include <gtest/gtest.h>

#include "src/apps/dcc/dcc.h"
#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"

namespace delirium::dcc {
namespace {

/// Compile `source` through the parallel pipeline; returns the output.
DccOutput parallel_compile(const std::string& source, int workers = 4) {
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_dcc_operators(registry, source);
  CompileOptions copts;
  copts.optimize = false;  // the coordination framework is straight-line
  CompiledProgram coordination =
      compile_or_throw(dcc_coordination_source(), registry, copts);
  Runtime runtime(registry, {.num_workers = workers});
  Value result = runtime.run(coordination);
  return std::move(result.block_mut<DccOutput>());
}

int64_t run_main(const CompiledProgram& program) {
  OperatorRegistry registry;
  register_builtin_operators(registry);
  Runtime runtime(registry, {.num_workers = 2});
  return runtime.run(program).as_int();
}

TEST(ProgramGen, GeneratesCompilableSource) {
  GenParams params;
  params.num_functions = 30;
  params.seed = 3;
  const std::string source = generate_program(params);
  OperatorRegistry registry;
  register_builtin_operators(registry);
  CompileResult result = compile_source("<gen>", source, registry);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  EXPECT_GT(count_lines(source), 30u);
}

TEST(ProgramGen, IsDeterministicPerSeed) {
  GenParams params;
  params.seed = 11;
  EXPECT_EQ(generate_program(params), generate_program(params));
  GenParams other = params;
  other.seed = 12;
  EXPECT_NE(generate_program(params), generate_program(other));
}

TEST(ProgramGen, GeneratedProgramsEvaluateDeterministically) {
  GenParams params;
  params.num_functions = 20;
  params.body_size = 25;
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    params.seed = seed;
    const std::string source = generate_program(params);
    OperatorRegistry registry;
    register_builtin_operators(registry);
    CompiledProgram program = compile_or_throw(source, registry);
    Runtime r1(registry, {.num_workers = 1});
    Runtime r4(registry, {.num_workers = 4});
    EXPECT_EQ(r1.run(program).as_int(), r4.run(program).as_int()) << "seed " << seed;
  }
}

TEST(PartitionByWeight, BalancesAndCoversAllFunctions) {
  AstContext ctx;
  std::vector<FuncDecl*> funcs;
  for (int i = 0; i < 40; ++i) {
    Expr* body = ctx.make_int(1);
    // Vary weight: function i has a chain of i applications.
    for (int k = 0; k < i; ++k) body = ctx.make_apply_named("incr", {body});
    funcs.push_back(ctx.make_func("f" + std::to_string(i), {}, body));
  }
  auto groups = partition_by_weight(funcs, 4);
  ASSERT_EQ(groups.size(), 4u);
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, funcs.size());
  // Balanced within 2x of the ideal weight.
  uint64_t grand = 0;
  std::vector<uint64_t> weights;
  for (const auto& g : groups) {
    uint64_t w = 0;
    for (const FuncDecl* f : g) w += subtree_weight(f->body);
    weights.push_back(w);
    grand += w;
  }
  for (uint64_t w : weights) EXPECT_LE(w, grand / 2);
}

TEST(ParallelCompiler, CompilesTheQueensProgramShape) {
  const std::string source = R"(
define LIMIT = 4

fact(n)
  if less_than(n, 2) then 1 else mul(n, fact(decr(n)))

main()
  fact(LIMIT)
)";
  DccOutput out = parallel_compile(source);
  ASSERT_TRUE(out.ok) << out.diagnostics;
  EXPECT_EQ(run_main(*out.program), 24);
}

TEST(ParallelCompiler, MatchesSequentialCompilerOnGeneratedPrograms) {
  GenParams params;
  params.num_functions = 40;
  params.body_size = 30;
  for (uint64_t seed : {5ull, 6ull}) {
    params.seed = seed;
    const std::string source = generate_program(params);

    OperatorRegistry registry;
    register_builtin_operators(registry);
    CompileResult sequential = compile_source("<gen>", source, registry);
    ASSERT_TRUE(sequential.ok) << sequential.diagnostics;

    DccOutput out = parallel_compile(source);
    ASSERT_TRUE(out.ok) << out.diagnostics;

    // The two compilers may optimize differently (per-group inlining),
    // but the compiled programs must compute the same value.
    EXPECT_EQ(run_main(sequential.program), run_main(*out.program)) << "seed " << seed;
  }
}

TEST(ParallelCompiler, ResultIndependentOfWorkerCount) {
  GenParams params;
  params.num_functions = 25;
  params.seed = 9;
  const std::string source = generate_program(params);
  DccOutput a = parallel_compile(source, 1);
  DccOutput b = parallel_compile(source, 4);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.num_templates, b.num_templates);
  EXPECT_EQ(a.total_nodes, b.total_nodes);
  EXPECT_EQ(run_main(*a.program), run_main(*b.program));
}

TEST(ParallelCompiler, ReportsErrorsFromAnyGroup) {
  const std::string source = R"(
good(x) add(x, 1)
bad(x) add(x, unknown_name_here)
main() good(1)
)";
  DccOutput out = parallel_compile(source);
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.diagnostics.find("unknown"), std::string::npos);
}

TEST(ParallelCompiler, RunsUnderVirtualTime) {
  GenParams params;
  params.num_functions = 30;
  params.seed = 4;
  const std::string source = generate_program(params);
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_dcc_operators(registry, source);
  CompileOptions copts;
  copts.optimize = false;
  CompiledProgram coordination =
      compile_or_throw(dcc_coordination_source(), registry, copts);
  SimRuntime sim(registry, {.num_procs = 3});
  SimResult result = sim.run(coordination);
  EXPECT_GT(result.makespan, 0);
  DccOutput out = std::move(result.result.block_mut<DccOutput>());
  EXPECT_TRUE(out.ok) << out.diagnostics;
}

}  // namespace
}  // namespace delirium::dcc
