// §6.2 parallel tree-walk primitives: crown clipping, bin balance, and
// the three walk strategies — each must be equivalent to a sequential
// full-tree walk, under both sequential and thread-pool executors.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>

#include "src/apps/dcc/program_gen.h"
#include "src/apps/dcc/tree_walk.h"
#include "src/baselines/fork_join.h"
#include "src/lang/parser.h"

namespace delirium::dcc {
namespace {

struct Tree {
  AstContext ctx;
  Expr* root = nullptr;
};

/// A big single-function tree from the generator (one function's body).
std::unique_ptr<Tree> big_tree(uint64_t seed, int body_size = 400) {
  GenParams params;
  params.num_functions = 1;
  params.body_size = body_size;
  params.call_density = 0;  // a single self-contained body
  params.seed = seed;
  auto out = std::make_unique<Tree>();
  SourceFile file("<gen>", generate_program(params));
  DiagnosticEngine diags;
  Program program = parse_source(file, out->ctx, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.summary(file);
  out->root = program.functions.at(0)->body;
  return out;
}

PieceExecutor pool_executor(baselines::ForkJoinPool& pool) {
  return [&pool](int pieces, const std::function<void(int)>& fn) { pool.fork(pieces, fn); };
}

size_t count_nodes(const Expr* root) { return subtree_weight(root); }

TEST(CrownClipping, SubtreesPartitionTheTree) {
  auto tree = big_tree(1);
  const CrownClip clip = clip_crown(tree->root, 4);
  EXPECT_GE(clip.subtrees.size(), 4u);
  // Crown + subtree weights account for every node exactly once.
  uint64_t subtree_total = 0;
  for (const Expr* s : clip.subtrees) subtree_total += subtree_weight(s);
  EXPECT_EQ(clip.crown_weight + subtree_total, clip.total_weight);
  // No subtree is an ancestor of another (disjointness).
  std::set<const Expr*> all;
  for (const Expr* s : clip.subtrees) {
    std::vector<const Expr*> stack{s};
    while (!stack.empty()) {
      const Expr* n = stack.back();
      stack.pop_back();
      EXPECT_TRUE(all.insert(n).second) << "node reached from two subtrees";
      for_each_child(n, [&stack](const Expr* c) { stack.push_back(c); });
    }
  }
}

TEST(CrownClipping, RespectsDesiredWeight) {
  auto tree = big_tree(2);
  const int pieces = 4;
  const CrownClip clip = clip_crown(tree->root, pieces);
  const uint64_t desired = clip.total_weight / pieces;
  for (const Expr* s : clip.subtrees) {
    EXPECT_LE(subtree_weight(s), desired);
  }
}

TEST(CrownClipping, BinsAreBalanced) {
  auto tree = big_tree(3, 800);
  const CrownClip clip = clip_crown(tree->root, 4);
  auto bins = assign_subtrees(clip, 4);
  ASSERT_EQ(bins.size(), 4u);
  std::vector<uint64_t> weights;
  for (const auto& bin : bins) {
    uint64_t w = 0;
    for (const Expr* s : bin) w += subtree_weight(s);
    weights.push_back(w);
  }
  const uint64_t max_w = *std::max_element(weights.begin(), weights.end());
  const uint64_t min_w = *std::min_element(weights.begin(), weights.end());
  EXPECT_LE(max_w, 2 * std::max<uint64_t>(min_w, 1) + clip.total_weight / 4);
}

TEST(TopDownWalk, VisitsEveryNodeOnce) {
  auto tree = big_tree(4);
  const size_t nodes = count_nodes(tree->root);
  std::atomic<size_t> visits{0};
  baselines::ForkJoinPool pool(3);
  top_down_walk(tree->root, 4, pool_executor(pool),
                [&visits](Expr*) { visits.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(visits.load(), nodes);
}

TEST(TopDownWalk, AncestorsUpdateBeforeDescendants) {
  // Mark nodes with a visit sequence; every child must carry a larger
  // mark than its parent. Store marks via the weight field (scratch).
  auto tree = big_tree(5);
  std::unordered_map<const Expr*, int> order;
  std::mutex mu;
  int counter = 0;
  top_down_walk(tree->root, 4, sequential_executor(), [&](Expr* node) {
    std::lock_guard<std::mutex> lock(mu);
    order[node] = counter++;
  });
  const std::function<void(const Expr*)> check = [&](const Expr* node) {
    for_each_child(node, [&](const Expr* child) {
      EXPECT_GT(order.at(child), order.at(node));
      check(child);
    });
  };
  check(tree->root);
}

TEST(SynthesizedWalk, MatchesSequentialReference) {
  // Synthesized attribute: subtree node count (i.e. recompute weight).
  auto tree = big_tree(6, 600);
  const uint64_t expected = subtree_weight(tree->root);
  baselines::ForkJoinPool pool(4);
  const SynthCombine<uint64_t> combine = [](Expr*, const std::vector<uint64_t>& kids) {
    uint64_t total = 1;
    for (uint64_t k : kids) total += k;
    return total;
  };
  EXPECT_EQ(synthesized_walk<uint64_t>(tree->root, 4, pool_executor(pool), combine),
            expected);
  EXPECT_EQ(synthesized_walk<uint64_t>(tree->root, 4, sequential_executor(), combine),
            expected);
}

TEST(SynthesizedWalk, MaxDepthAttribute) {
  auto tree = big_tree(7);
  const SynthCombine<int> combine = [](Expr*, const std::vector<int>& kids) {
    int deepest = 0;
    for (int k : kids) deepest = std::max(deepest, k);
    return deepest + 1;
  };
  // Reference: plain recursion.
  const std::function<int(const Expr*)> depth_of = [&](const Expr* node) {
    int deepest = 0;
    for_each_child(node, [&](const Expr* c) { deepest = std::max(deepest, depth_of(c)); });
    return deepest + 1;
  };
  baselines::ForkJoinPool pool(3);
  EXPECT_EQ(synthesized_walk<int>(tree->root, 6, pool_executor(pool), combine),
            depth_of(tree->root));
}

TEST(InheritedWalk, DepthAnnotationMatchesReference) {
  auto tree = big_tree(8);
  // Inherited attribute: depth from the root; record per node.
  std::unordered_map<const Expr*, int> parallel_depths;
  std::mutex mu;
  const InheritStep<int> step = [&](Expr* node, const int& in) {
    {
      std::lock_guard<std::mutex> lock(mu);
      parallel_depths[node] = in;
    }
    return in + 1;
  };
  baselines::ForkJoinPool pool(4);
  inherited_walk<int>(tree->root, 4, pool_executor(pool), 0, step);

  std::unordered_map<const Expr*, int> reference;
  const std::function<void(const Expr*, int)> walk = [&](const Expr* node, int d) {
    reference[node] = d;
    for_each_child(node, [&](const Expr* c) { walk(c, d + 1); });
  };
  walk(tree->root, 0);
  ASSERT_EQ(parallel_depths.size(), reference.size());
  for (const auto& [node, d] : reference) {
    EXPECT_EQ(parallel_depths.at(node), d);
  }
}

TEST(Walks, SinglePieceDegeneratesToSequential) {
  auto tree = big_tree(9, 60);
  std::atomic<size_t> visits{0};
  top_down_walk(tree->root, 1, sequential_executor(),
                [&visits](Expr*) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), count_nodes(tree->root));
}

TEST(Walks, TinyTreeManyPieces) {
  AstContext ctx;
  Expr* root = ctx.make_apply_named("add", {ctx.make_int(1), ctx.make_int(2)});
  std::atomic<size_t> visits{0};
  top_down_walk(root, 16, sequential_executor(), [&visits](Expr*) { visits.fetch_add(1); });
  EXPECT_EQ(visits.load(), 4u);  // add + var callee + two ints
}

}  // namespace
}  // namespace delirium::dcc
