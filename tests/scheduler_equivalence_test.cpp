// Scheduler equivalence: the work-stealing scheduler must compute
// exactly what the global-lock scheduler computes. Determinism in
// Delirium is about *values*, not schedules — so every example program
// and stress workload runs through the ExecutorFixture matrix
// (both schedulers × {1, 2, 8} workers, plus the virtual-time
// simulator) × all three affinity modes, asserting identical results,
// identical graph-determined counters, and equal deterministic trace
// multisets (all functions of the coordination graph alone, not of the
// schedule).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/delirium.h"
#include "tests/test_util.h"

#ifndef DELIRIUM_PROGRAMS_DIR
#define DELIRIUM_PROGRAMS_DIR "examples/programs"
#endif

namespace delirium {
namespace {

std::string read_program(const std::string& name) {
  const std::string path = std::string(DELIRIUM_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Stress-shaped workloads from runtime_stress_test, as sources that
/// need only the builtin registry.
std::string wide_fanout_source() {
  std::string source = "leaf(x) incr(x)\nmain()\n  let\n";
  for (int i = 0; i < 128; ++i) {
    source += "    x" + std::to_string(i) + " = leaf(" + std::to_string(i) + ")\n";
  }
  source += "  in ";
  std::string sum = "x0";
  for (int i = 1; i < 128; ++i) sum = "add(" + sum + ", x" + std::to_string(i) + ")";
  return source + sum + "\n";
}

struct Workload {
  const char* name;
  std::string source;
};

std::vector<Workload> workloads() {
  return {
      {"fib.dlr", read_program("fib.dlr")},
      {"queens.dlr", read_program("queens.dlr")},
      {"pi.dlr", read_program("pi.dlr")},
      {"loops.dlr", read_program("loops.dlr")},
      {"mergesort.dlr", read_program("mergesort.dlr")},
      {"primes.dlr", read_program("primes.dlr")},
      {"wide_fanout", wide_fanout_source()},
      {"deep_nontail",
       "depth(n) if is_equal(n, 0) then 0 else incr(depth(decr(n)))\n"
       "main() depth(5000)\n"},
      {"parmap_fanout",
       "work(x) add(mul(x, x), 1)\n"
       "total(p)\n"
       "  iterate {\n"
       "    i = 0, incr(i)\n"
       "    acc = 0, add(acc, package_get(p, i))\n"
       "  } while is_not_equal(i, package_size(p)), result acc\n"
       "main() total(parmap(work, range(200)))\n"},
  };
}

/// The DELIRIUM_SCHEDULER env var (used by the TSan CI job to force the
/// work-stealing scheduler) overrides RuntimeConfig::scheduler, so
/// tests that assert mode-specific counters cannot run under a
/// conflicting override.
bool env_overrides_scheduler(const char* wanted) {
  const char* env = std::getenv("DELIRIUM_SCHEDULER");
  return env != nullptr && std::string(env) != wanted;
}

std::string affinity_name(const ::testing::TestParamInfo<AffinityMode>& info) {
  switch (info.param) {
    case AffinityMode::kNone: return "NoAffinity";
    case AffinityMode::kOperator: return "OperatorAffinity";
    case AffinityMode::kData: return "DataAffinity";
  }
  return "Unknown";
}

class SchedulerEquivalence : public ::testing::TestWithParam<AffinityMode> {};

TEST_P(SchedulerEquivalence, AllExecutorsMatchTheGlobalLockReference) {
  // The fixture's reference is global-lock × 1 worker (the original
  // scheduler); every other matrix entry — work stealing at 1/2/8
  // workers, global lock at 2/8, the simulator at 1/4 procs — must
  // produce the same values, counters, and trace multisets.
  testing::ExecutorFixture fixture;
  fixture.config().affinity = GetParam();
  for (const Workload& w : workloads()) {
    SCOPED_TRACE(w.name);
    fixture.expect_equivalent(w.source);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, SchedulerEquivalence,
                         ::testing::Values(AffinityMode::kNone, AffinityMode::kOperator,
                                           AffinityMode::kData),
                         affinity_name);

TEST(SchedulerStats, WorkStealingCountersAreCoherent) {
  if (env_overrides_scheduler("work_stealing")) {
    GTEST_SKIP() << "DELIRIUM_SCHEDULER forces a different scheduler";
  }
  auto reg = testing::builtin_registry();
  CompiledProgram program =
      compile_or_throw("work(x) add(mul(x, x), 1)\n"
                       "total(p)\n"
                       "  iterate {\n"
                       "    i = 0, incr(i)\n"
                       "    acc = 0, add(acc, package_get(p, i))\n"
                       "  } while is_not_equal(i, package_size(p)), result acc\n"
                       "main() total(parmap(work, range(64)))\n",
                       *reg);
  RuntimeConfig config;
  config.num_workers = 4;
  config.scheduler = SchedulerKind::kWorkStealing;
  Runtime runtime(*reg, config);
  runtime.run(program);
  const RunStats& s = runtime.last_stats();
  // Every scheduled node went through exactly one enqueue path.
  EXPECT_EQ(s.sched_local_enqueues + s.sched_injected_enqueues, s.nodes_executed);
  // The run begins with an injection from the caller thread.
  EXPECT_GE(s.sched_injected_enqueues, 1u);
}

TEST(SchedulerStats, GlobalLockReportsAllEnqueuesLocal) {
  if (env_overrides_scheduler("global_lock")) {
    GTEST_SKIP() << "DELIRIUM_SCHEDULER forces a different scheduler";
  }
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw("main() add(1, 2)", *reg);
  RuntimeConfig config;
  config.num_workers = 2;
  config.scheduler = SchedulerKind::kGlobalLock;
  Runtime runtime(*reg, config);
  runtime.run(program);
  const RunStats& s = runtime.last_stats();
  EXPECT_EQ(s.sched_local_enqueues, s.nodes_executed);
  EXPECT_EQ(s.sched_injected_enqueues, 0u);
  EXPECT_EQ(s.sched_steals, 0u);
}

}  // namespace
}  // namespace delirium
