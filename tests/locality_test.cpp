// Locality model tests (docs/RUNTIME.md "Locality model"): the
// MemoryTopology grammar and presets, BlockHome packing, and — the
// load-bearing contract — that topology, affinity, and locality-aware
// scheduling are performance models only: values, fault reports, and
// deterministic trace multisets are byte-identical across every
// topology, both executors, and affinity on/off.
//
// Suites are named Locality* so CI can select them with `-R Locality`.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/support/env.h"
#include "src/support/topology.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ExecutorFixture;
using testing::ExecutorOutcome;
using testing::ExecutorSpec;
using testing::ScopedEnv;

// ---------------------------------------------------------------------------
// MemoryTopology: presets, domain striping, parse grammar
// ---------------------------------------------------------------------------

TEST(LocalityTopology, UmaPresetIsTheCostlessDefault) {
  const MemoryTopology topo = MemoryTopology::uma();
  EXPECT_EQ(topo, MemoryTopology{});
  EXPECT_EQ(topo.num_domains, 1);
  EXPECT_TRUE(topo.single_domain());
  EXPECT_FALSE(topo.models_cost());
  for (int w : {0, 1, 7}) EXPECT_EQ(topo.domain_of(w), 0);
}

TEST(LocalityTopology, PresetsModelIncreasinglyRemoteMemory) {
  const MemoryTopology numa2 = MemoryTopology::numa2();
  const MemoryTopology numa4 = MemoryTopology::numa4();
  const MemoryTopology cluster = MemoryTopology::cluster();
  EXPECT_EQ(numa2.num_domains, 2);
  EXPECT_EQ(numa4.num_domains, 4);
  EXPECT_EQ(cluster.num_domains, 4);
  EXPECT_TRUE(numa2.models_cost());
  EXPECT_LT(numa2.inter_kib_cost_ns, numa4.inter_kib_cost_ns);
  EXPECT_LT(numa4.inter_kib_cost_ns, cluster.inter_kib_cost_ns);
  EXPECT_LT(numa4.migration_cost_ns, cluster.migration_cost_ns);
}

TEST(LocalityTopology, DomainStripingIsWorkerModuloDomains) {
  const MemoryTopology numa4 = MemoryTopology::numa4();
  EXPECT_EQ(numa4.domain_of(0), 0);
  EXPECT_EQ(numa4.domain_of(5), 1);
  EXPECT_EQ(numa4.domain_of(7), 3);
  EXPECT_EQ(numa4.domain_of(-1), -1);
  // num_domains == 0 is the degenerate one-domain-per-worker (flat)
  // topology: every worker is its own domain.
  const MemoryTopology flat = MemoryTopology::flat(250);
  EXPECT_EQ(flat.num_domains, 0);
  EXPECT_EQ(flat.domain_of(3), 3);
  EXPECT_EQ(flat.inter_kib_cost_ns, 250);
  EXPECT_EQ(flat.migration_cost_ns, 0);
  EXPECT_FALSE(flat.single_domain());
}

TEST(LocalityTopology, ParseAcceptsPresetsAndKeyOverrides) {
  EXPECT_EQ(parse_topology("uma", "test"), MemoryTopology::uma());
  EXPECT_EQ(parse_topology("numa2", "test"), MemoryTopology::numa2());
  EXPECT_EQ(parse_topology("cluster", "test"), MemoryTopology::cluster());

  const MemoryTopology custom =
      parse_topology("numa2:domains=8,intra=5,inter=900,migrate=0", "test");
  EXPECT_EQ(custom.num_domains, 8);
  EXPECT_EQ(custom.intra_kib_cost_ns, 5);
  EXPECT_EQ(custom.inter_kib_cost_ns, 900);
  EXPECT_EQ(custom.migration_cost_ns, 0);

  const MemoryTopology flat = parse_topology("flat:inter=1000", "test");
  EXPECT_EQ(flat.num_domains, 0);
  EXPECT_EQ(flat.inter_kib_cost_ns, 1000);
}

TEST(LocalityTopology, ParseRejectsMalformedSpecsNamingTheSource) {
  for (const char* bad : {"", "butterfly", "numa2:watts=3", "numa2:inter=",
                          "numa2:inter=abc", "numa2:inter=-5", "numa2:domains=1x"}) {
    try {
      parse_topology(bad, "DELIRIUM_TOPOLOGY");
      FAIL() << "accepted '" << bad << "'";
    } catch (const EnvError& e) {
      // The diagnostic names the source knob and echoes the bad spec.
      EXPECT_NE(std::string(e.what()).find("DELIRIUM_TOPOLOGY"), std::string::npos)
          << e.what();
    }
  }
}

// ---------------------------------------------------------------------------
// BlockHome: the packed (worker, domain) placement word
// ---------------------------------------------------------------------------

TEST(LocalityBlockHome, DefaultIsUnplacedAndRoundTrips) {
  Value v = Value::block(std::vector<double>{1.0, 2.0});
  BlockBase& blk = *v.block_ptr();
  EXPECT_EQ(blk.home_worker(), -1);
  EXPECT_EQ(blk.home_domain(), -1);
  blk.set_home(5, 1);
  EXPECT_EQ(blk.home_worker(), 5);
  EXPECT_EQ(blk.home_domain(), 1);
  blk.set_home(-1, -1);
  EXPECT_EQ(blk.home_worker(), -1);
  EXPECT_EQ(blk.home_domain(), -1);
  // Large coordinates survive the 32-bit halves.
  blk.set_home(1 << 20, 255);
  EXPECT_EQ(blk.home_worker(), 1 << 20);
  EXPECT_EQ(blk.home_domain(), 255);
}

// ---------------------------------------------------------------------------
// Equivalence: topology and affinity never change what a program means
// ---------------------------------------------------------------------------

std::shared_ptr<OperatorRegistry> locality_registry() {
  auto reg = testing::builtin_registry();
  reg->add("make_data", 0, [](OpContext&) {
    return Value::block(std::vector<double>(1 << 13, 1.0));  // 64 KiB
  });
  reg->add("scale", 1, [](OpContext& ctx) {
    Value v = ctx.take(0);
    for (double& d : v.block_mut<std::vector<double>>()) d *= 2.0;
    return v;
  }).destructive(0);
  reg->add("weigh", 1, [](OpContext& ctx) {
    const auto& data = ctx.arg_block<std::vector<double>>(0);
    double sum = 0;
    for (double d : data) sum += d;
    return Value::of(static_cast<int64_t>(sum));
  });
  reg->add("sum4", 4, [](OpContext& ctx) {
    return Value::of(ctx.arg_int(0) + ctx.arg_int(1) + ctx.arg_int(2) + ctx.arg_int(3));
  });
  reg->add("combine", 2, [](OpContext& ctx) {
    const auto& a = ctx.arg_block<std::vector<double>>(0);
    const auto& b = ctx.arg_block<std::vector<double>>(1);
    return Value::of(static_cast<int64_t>(a.size() + b.size()));
  });
  reg->add("boom", 1, [](OpContext& ctx) -> Value {
    if (ctx.arg_int(0) > 2) throw RuntimeError("boom: input out of range");
    return ctx.take(0);
  });
  return reg;
}

// A block-heavy fan-out: four 64-KiB blocks produced, mutated, and
// reduced — under a multi-domain topology this forces cross-domain
// pulls, migrations, and (threaded) domain-biased steals.
constexpr const char* kBlockFanOut = R"(
main()
  let a = weigh(scale(make_data()))
      b = weigh(scale(make_data()))
      c = weigh(scale(make_data()))
      d = weigh(scale(make_data()))
  in sum4(a, b, c, d)
)";

// Two blocks produced on (up to) two different workers, then joined by
// one consumer: under any multi-domain topology with two processors the
// join necessarily pulls at least one block across domains.
constexpr const char* kBlockJoin = R"(
main()
  let a = scale(make_data())
      b = scale(make_data())
  in combine(a, b)
)";

const std::vector<MemoryTopology>& all_topologies() {
  static const std::vector<MemoryTopology> topologies = {
      MemoryTopology::uma(), MemoryTopology::numa2(), MemoryTopology::numa4(),
      MemoryTopology::cluster()};
  return topologies;
}

TEST(LocalityEquivalence, ValuesAndTracesIdenticalAcrossTopologies) {
  auto reg = locality_registry();
  const CompiledProgram program = compile_or_throw(kBlockFanOut, *reg);
  ExecutorOutcome ref;
  for (size_t i = 0; i < all_topologies().size(); ++i) {
    ExecutorFixture fixture(*reg);
    fixture.config().topology = all_topologies()[i];
    fixture.config().affinity = AffinityMode::kData;
    // Within one topology: the whole executor matrix agrees.
    const ExecutorOutcome got = fixture.expect_equivalent(program);
    ASSERT_FALSE(got.faulted()) << got.error_text;
    EXPECT_EQ(got.value.as_int(), 4 * 2 * (1 << 13));
    if (i == 0) {
      ref = got;
      continue;
    }
    // Across topologies: values, graph-determined counters, and the
    // deterministic trace multiset are byte-identical too.
    const std::string where = "topology " + all_topologies()[i].name + " vs uma";
    EXPECT_TRUE(deep_equal(got.value, ref.value)) << where;
    EXPECT_EQ(got.stats.nodes_executed, ref.stats.nodes_executed) << where;
    EXPECT_EQ(got.stats.operator_invocations, ref.stats.operator_invocations) << where;
    EXPECT_EQ(got.stats.activations_created, ref.stats.activations_created) << where;
    EXPECT_EQ(got.trace, ref.trace) << where;
  }
}

TEST(LocalityEquivalence, FaultReportsIdenticalAcrossTopologies) {
  auto reg = locality_registry();
  const CompiledProgram program = compile_or_throw(
      "main() let a = weigh(make_data()) in boom(a)", *reg);
  std::string ref_error;
  for (size_t i = 0; i < all_topologies().size(); ++i) {
    ExecutorFixture fixture(*reg);
    fixture.config().topology = all_topologies()[i];
    fixture.config().affinity = AffinityMode::kData;
    const ExecutorOutcome got = fixture.expect_equivalent(program);
    ASSERT_TRUE(got.faulted());
    EXPECT_NE(got.error_text.find("boom: input out of range"), std::string::npos);
    if (i == 0) ref_error = got.error_text;
    else EXPECT_EQ(got.error_text, ref_error)
        << "topology " << all_topologies()[i].name << " vs uma";
  }
}

TEST(LocalityEquivalence, DataAffinityNeverChangesOutcomesVersusNone) {
  // Satellite contract: AffinityMode::kData (and the in-domain worker
  // selection behind it) is placement only. Values, fault reports, and
  // trace multisets match a kNone run on every executor and topology.
  auto reg = locality_registry();
  for (const char* source :
       {kBlockFanOut, "main() let a = weigh(make_data()) in boom(a)"}) {
    const CompiledProgram program = compile_or_throw(source, *reg);
    for (const MemoryTopology& topo : {MemoryTopology::uma(), MemoryTopology::numa4()}) {
      ExecutorFixture fixture(*reg);
      fixture.config().topology = topo;
      fixture.config().affinity = AffinityMode::kNone;
      const ExecutorOutcome none = fixture.expect_equivalent(program);
      fixture.config().affinity = AffinityMode::kData;
      const ExecutorOutcome data = fixture.expect_equivalent(program);
      const std::string where = "affinity data vs none, topology " + topo.name;
      EXPECT_EQ(data.faulted(), none.faulted()) << where;
      if (none.faulted()) {
        EXPECT_EQ(data.error_text, none.error_text) << where;
      } else {
        EXPECT_TRUE(deep_equal(data.value, none.value)) << where;
        EXPECT_EQ(data.trace, none.trace) << where;
      }
      EXPECT_EQ(data.stats.nodes_executed, none.stats.nodes_executed) << where;
    }
  }
}

// ---------------------------------------------------------------------------
// Cost model: legacy flat penalty, counters, and the sim's exact charges
// ---------------------------------------------------------------------------

Ticks fixed_cost_makespan(const OperatorRegistry& reg, const CompiledProgram& program,
                          SimConfig config) {
  static const std::unordered_map<std::string, Ticks> kNoCosts;
  config.num_procs = 2;
  config.fixed_costs = &kNoCosts;  // every op costs the default — deterministic
  config.fixed_cost_default_ns = 100;
  SimRuntime sim(reg, config);
  return sim.run(program).makespan;
}

TEST(LocalityCost, LegacyFlatPenaltyReproducesByteIdentically) {
  // remote_penalty_ns_per_kb with a default topology must mean exactly
  // MemoryTopology::flat(penalty): same virtual makespan to the tick.
  auto reg = locality_registry();
  const CompiledProgram program = compile_or_throw(kBlockJoin, *reg);
  SimConfig legacy;
  legacy.remote_penalty_ns_per_kb = 1000;
  SimConfig explicit_flat;
  explicit_flat.topology = MemoryTopology::flat(1000);
  EXPECT_EQ(fixed_cost_makespan(*reg, program, legacy),
            fixed_cost_makespan(*reg, program, explicit_flat));
  // And the penalty actually costs something versus UMA.
  EXPECT_GT(fixed_cost_makespan(*reg, program, legacy),
            fixed_cost_makespan(*reg, program, SimConfig{}));
}

TEST(LocalityCost, SimCountsRemotePullsAndBytesUnderMultiDomainTopology) {
  auto reg = locality_registry();
  const CompiledProgram program = compile_or_throw(kBlockJoin, *reg);
  SimConfig numa;
  numa.topology = MemoryTopology::numa2();
  numa.num_procs = 2;
  SimRuntime sim(*reg, numa);
  const SimResult r = sim.run(program);
  // Two virtual processors in two different domains: the combine join
  // necessarily pulls at least one 64-KiB block across domains.
  EXPECT_GE(r.stats.remote_block_moves, 1u);
  EXPECT_GE(r.stats.remote_bytes_pulled, uint64_t{1} << 16);
  // Steal counters are a threaded-machine concept: always zero in sim.
  EXPECT_EQ(r.stats.sched_local_steals, 0u);
  EXPECT_EQ(r.stats.sched_remote_steals, 0u);

  SimConfig uma;
  uma.num_procs = 2;
  SimRuntime sim_uma(*reg, uma);
  const SimResult r_uma = sim_uma.run(program);
  EXPECT_EQ(r_uma.stats.remote_block_moves, 0u);
  EXPECT_EQ(r_uma.stats.remote_bytes_pulled, 0u);
}

TEST(LocalityCost, ThreadedStealSplitSumsToTotalSteals) {
  auto reg = locality_registry();
  const CompiledProgram program = compile_or_throw(kBlockFanOut, *reg);
  for (const MemoryTopology& topo :
       {MemoryTopology::uma(), MemoryTopology::numa2(), MemoryTopology::flat(0)}) {
    RuntimeConfig config;
    config.num_workers = 4;
    config.scheduler = SchedulerKind::kWorkStealing;
    config.topology = topo;
    Runtime runtime(*reg, config);
    runtime.run(program);
    const RunStats s = runtime.last_stats();
    EXPECT_EQ(s.sched_local_steals + s.sched_remote_steals, s.sched_steals)
        << "topology " << topo.name;
    // The split is keyed off the victim's actual domain: under one
    // domain every steal is local; under per-worker domains every
    // cross-worker steal is remote.
    if (topo.single_domain()) EXPECT_EQ(s.sched_remote_steals, 0u);
    if (topo.num_domains == 0) EXPECT_EQ(s.sched_local_steals, 0u);
  }
}

// ---------------------------------------------------------------------------
// Environment knobs: DELIRIUM_TOPOLOGY / DELIRIUM_AFFINITY / DELIRIUM_LOCALITY
// ---------------------------------------------------------------------------

TEST(LocalityEnv, TopologyEnvMatchesExplicitConfigByteForByte) {
  auto reg = locality_registry();
  const CompiledProgram program = compile_or_throw(kBlockFanOut, *reg);
  ScopedEnv env({"DELIRIUM_TOPOLOGY", "DELIRIUM_AFFINITY", "DELIRIUM_LOCALITY"});
  SimConfig explicit_config;
  explicit_config.topology = MemoryTopology::cluster();
  const Ticks explicit_makespan = fixed_cost_makespan(*reg, program, explicit_config);
  env.set("DELIRIUM_TOPOLOGY", "cluster");
  EXPECT_EQ(fixed_cost_makespan(*reg, program, SimConfig{}), explicit_makespan);
}

TEST(LocalityEnv, MalformedKnobsFailLoudlyAtConstruction) {
  auto reg = locality_registry();
  ScopedEnv env({"DELIRIUM_TOPOLOGY", "DELIRIUM_AFFINITY", "DELIRIUM_LOCALITY"});
  env.set("DELIRIUM_TOPOLOGY", "hypercube");
  EXPECT_THROW(SimRuntime(*reg, SimConfig{}), EnvError);
  EXPECT_THROW(Runtime(*reg, RuntimeConfig{}), EnvError);
  env.set("DELIRIUM_TOPOLOGY", "numa2");
  env.set("DELIRIUM_AFFINITY", "everywhere");
  EXPECT_THROW(SimRuntime(*reg, SimConfig{}), EnvError);
  EXPECT_THROW(Runtime(*reg, RuntimeConfig{}), EnvError);
}

TEST(LocalityEnv, LocalityKillSwitchKeepsValuesAndCostModel) {
  // DELIRIUM_LOCALITY=0 disables the *scheduling* policy but not the
  // topology cost model: remote pulls are still charged and counted.
  auto reg = locality_registry();
  const CompiledProgram program = compile_or_throw(kBlockJoin, *reg);
  ScopedEnv env({"DELIRIUM_TOPOLOGY", "DELIRIUM_AFFINITY", "DELIRIUM_LOCALITY"});
  env.set("DELIRIUM_LOCALITY", "0");
  SimConfig config;
  config.topology = MemoryTopology::cluster();
  config.num_procs = 2;
  config.affinity = AffinityMode::kData;
  SimRuntime sim(*reg, config);
  const SimResult r = sim.run(program);
  EXPECT_EQ(r.result.as_int(), 2 * (1 << 13));
  EXPECT_GE(r.stats.remote_block_moves, 1u);
}

}  // namespace
}  // namespace delirium
