// Compiler driver (compile_source) tests: timings, diagnostics rendering,
// stats, and option plumbing. Plus diagnostics/source unit tests.
#include <gtest/gtest.h>
#include <sstream>

#include "src/delirium.h"

namespace delirium {
namespace {

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    return reg;
  }();
  return r;
}

TEST(Driver, SuccessfulCompileCarriesEverything) {
  CompileResult result = compile_source("<t>", "f(x) incr(x)\nmain() f(41)", registry());
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_GE(result.program.templates.size(), 1u);
  EXPECT_GT(result.ast_nodes, 0u);
  EXPECT_GE(result.timings.total_ms(), 0.0);
  EXPECT_EQ(validate_graph(result.program), "");
}

TEST(Driver, FailedCompileReportsDiagnosticsWithPositions) {
  CompileResult result = compile_source("<t>", "main()\n  bogus_name(1)", registry());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.diagnostics.find("bogus_name"), std::string::npos);
  EXPECT_NE(result.diagnostics.find("2:"), std::string::npos);  // line 2
}

TEST(Driver, CompileOrThrowThrowsWithMessage) {
  try {
    compile_or_throw("main() nope()", registry());
    FAIL();
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nope"), std::string::npos);
  }
}

TEST(Driver, OptimizeOffKeepsAllFunctions) {
  CompileOptions options;
  options.optimize = false;
  CompileResult result =
      compile_source("<t>", "a() 1\nb() 2\nmain() a()", registry(), options);
  ASSERT_TRUE(result.ok);
  EXPECT_NE(result.program.find("b"), nullptr);
}

TEST(Driver, CustomEntryPoint) {
  CompileOptions options;
  options.sema.entry_point = "start";
  CompileResult result = compile_source("<t>", "start() 7", registry(), options);
  ASSERT_TRUE(result.ok) << result.diagnostics;
  EXPECT_EQ(result.program.entry_template().name, "start");
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(result.program).as_int(), 7);
}

TEST(Driver, ProgramOutlivesSourceText) {
  CompiledProgram program = [] {
    std::string source = "main() add(40, 2)";
    CompiledProgram p = compile_or_throw(source, registry());
    source.assign(200, 'x');  // clobber
    return p;
  }();
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 42);
}

TEST(Driver, OperatorsSharedBetweenApplications) {
  // Two programs compiled against one registry run on one runtime.
  CompiledProgram a = compile_or_throw("main() add(1, 2)", registry());
  CompiledProgram b = compile_or_throw("main() mul(2, 3)", registry());
  Runtime runtime(registry(), {.num_workers = 2});
  EXPECT_EQ(runtime.run(a).as_int(), 3);
  EXPECT_EQ(runtime.run(b).as_int(), 6);
  EXPECT_EQ(runtime.run(a).as_int(), 3);
}

// --- diagnostics / source infrastructure -----------------------------------

TEST(Source, LineColMapping) {
  SourceFile file("<t>", "abc\ndef\n\nghi");
  EXPECT_EQ(file.line_col({0}).line, 1u);
  EXPECT_EQ(file.line_col({4}).line, 2u);
  EXPECT_EQ(file.line_col({6}).col, 3u);
  EXPECT_EQ(file.line_col({8}).line, 3u);   // empty line
  EXPECT_EQ(file.line_col({9}).line, 4u);
  EXPECT_EQ(file.line_col({999}).line, 4u);  // clamped
  EXPECT_EQ(file.line_count(), 4u);
}

TEST(Source, LineTextExtraction) {
  SourceFile file("<t>", "first\nsecond\r\nthird");
  EXPECT_EQ(file.line_text({0}), "first");
  EXPECT_EQ(file.line_text({6}), "second");
  EXPECT_EQ(file.line_text({20}), "third");
}

TEST(Diagnostics, PrintIncludesSnippetAndCaret) {
  SourceFile file("<t>", "main() nope(1)");
  DiagnosticEngine diags;
  diags.error(SourceRange{{7}, {11}}, "unknown name 'nope'");
  std::ostringstream os;
  diags.print(os, file);
  const std::string text = os.str();
  EXPECT_NE(text.find("<t>:1:8: error: unknown name 'nope'"), std::string::npos);
  EXPECT_NE(text.find("main() nope(1)"), std::string::npos);
  EXPECT_NE(text.find("^"), std::string::npos);
}

TEST(Diagnostics, CountsErrorsNotWarnings) {
  DiagnosticEngine diags;
  diags.warning({}, "w");
  diags.note({}, "n");
  EXPECT_FALSE(diags.has_errors());
  diags.error({}, "e");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 3u);
}

}  // namespace
}  // namespace delirium
