// Tools module tests: report tables, timing aggregation, medians, and
// Chrome trace export.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "src/delirium.h"
#include "src/tools/report.h"
#include "src/tools/trace.h"

namespace delirium::tools {
namespace {

TEST(Table, AlignsColumnsAndBorders) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22222"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| name        | value |"), std::string::npos);
  EXPECT_NE(text.find("| longer-name | 22222 |"), std::string::npos);
  EXPECT_NE(text.find("+-------------+-------+"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NE(table.to_string().find("only"), std::string::npos);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::ms(1.2345), "1.2");
  EXPECT_EQ(Table::ms(1.2345, 3), "1.234");
  EXPECT_EQ(Table::ratio(2.5), "2.50x");
  EXPECT_EQ(Table::count(42), "42");
}

TEST(Aggregate, ComputesPerOpStats) {
  std::vector<NodeTiming> timings = {
      {"op_a", "t", 100, 0, 0}, {"op_a", "t", 300, 1, 1}, {"op_b", "t", 50, 0, 2}};
  auto agg = aggregate_timings(timings);
  EXPECT_EQ(agg.at("op_a").invocations, 2);
  EXPECT_EQ(agg.at("op_a").total, 400);
  EXPECT_EQ(agg.at("op_a").min, 100);
  EXPECT_EQ(agg.at("op_a").max, 300);
  EXPECT_DOUBLE_EQ(agg.at("op_a").mean(), 200.0);
  EXPECT_EQ(agg.at("op_b").invocations, 1);
}

TEST(Aggregate, PrintTraceRespectsLimit) {
  std::vector<NodeTiming> timings(10, NodeTiming{"op", "t", 5, 0, 0});
  std::ostringstream os;
  print_timing_trace(os, timings, 3);
  EXPECT_NE(os.str().find("call of op took 5"), std::string::npos);
  EXPECT_NE(os.str().find("(7 more)"), std::string::npos);
}

TEST(Median, OddAndRepeatable) {
  int calls = 0;
  const double m = median_of(5, [&] {
    ++calls;
    return static_cast<double>(calls);  // 1..5
  });
  EXPECT_EQ(calls, 5);
  EXPECT_DOUBLE_EQ(m, 3.0);
}

TEST(Trace, EmitsValidShapedJson) {
  std::vector<NodeTiming> timings = {
      {"alpha", "main", 1500, 0, 0}, {"beta \"q\"", "main", 2500, 1, 1}};
  std::ostringstream os;
  write_chrome_trace(os, timings);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find(R"("name": "alpha")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph": "X")"), std::string::npos);
  EXPECT_NE(json.find(R"(\"q\")"), std::string::npos);  // escaped quote
  EXPECT_NE(json.find(R"("tid": 1)"), std::string::npos);
}

TEST(Trace, RoundTripFromARealRun) {
  OperatorRegistry registry;
  register_builtin_operators(registry);
  CompiledProgram program = compile_or_throw(
      "main() iterate { i = 0, incr(i) } while less_than(i, 20), result i", registry);
  RuntimeConfig config{.num_workers = 2};
  config.enable_node_timing = true;
  Runtime runtime(registry, config);
  runtime.run(program);
  ASSERT_FALSE(runtime.node_timings().empty());
  const std::string path = ::testing::TempDir() + "/delirium_trace_test.json";
  ASSERT_TRUE(write_chrome_trace_file(path, runtime.node_timings()));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("incr"), std::string::npos);
  // Crude balance check: events exist for the run.
  EXPECT_GE(std::count(content.begin(), content.end(), '{'),
            static_cast<long>(runtime.node_timings().size()));
}

// ---------------------------------------------------------------------------
// CLI documentation contract
// ---------------------------------------------------------------------------

// Every `--flag` token in a text, e.g. "--trace-events".
std::set<std::string> flag_tokens(const std::string& text) {
  std::set<std::string> flags;
  for (size_t i = 0; i + 2 < text.size(); ++i) {
    if (text[i] != '-' || text[i + 1] != '-' || !std::islower(text[i + 2])) continue;
    size_t end = i + 2;
    while (end < text.size() && (std::islower(text[end]) || text[end] == '-')) ++end;
    flags.insert(text.substr(i, end - i));
    i = end;
  }
  return flags;
}

TEST(Cli, HelpNamesEveryDocumentedFlag) {
  // delc --help and docs/CLI.md must name exactly the same flag set —
  // a flag added to one without the other fails here.
  FILE* pipe = ::popen((std::string(DELIRIUM_DELC_PATH) + " --help").c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string help;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) help.append(buf, n);
  ASSERT_EQ(::pclose(pipe), 0);
  ASSERT_FALSE(help.empty());

  std::ifstream doc(std::string(DELIRIUM_DOCS_DIR) + "/CLI.md");
  ASSERT_TRUE(doc.good()) << "missing docs/CLI.md";
  std::string cli_md((std::istreambuf_iterator<char>(doc)),
                     std::istreambuf_iterator<char>());

  const std::set<std::string> help_flags = flag_tokens(help);
  const std::set<std::string> doc_flags = flag_tokens(cli_md);
  ASSERT_FALSE(help_flags.empty());
  for (const std::string& flag : help_flags) {
    EXPECT_TRUE(doc_flags.count(flag)) << flag << " missing from docs/CLI.md";
  }
  for (const std::string& flag : doc_flags) {
    EXPECT_TRUE(help_flags.count(flag)) << flag << " missing from delc --help";
  }
  // The env knobs must be documented alongside the flags.
  for (const char* env : {"DELIRIUM_EXECUTOR", "DELIRIUM_SCHEDULER",
                          "DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES",
                          "DELIRIUM_TRACE", "DELIRIUM_TRACE_CAPACITY",
                          "DELIRIUM_ACTIVATION_POOL"}) {
    EXPECT_NE(cli_md.find(env), std::string::npos) << env << " missing from docs/CLI.md";
    EXPECT_NE(help.find(env), std::string::npos) << env << " missing from delc --help";
  }
}

// Run `command` through the shell; returns {exit status, combined stdout}.
std::pair<int, std::string> run_command(const std::string& command) {
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return {-1, ""};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  const int status = ::pclose(pipe);
  return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, out};
}

TEST(Cli, ExecutorFlagSelectsEngine) {
  const std::string program = ::testing::TempDir() + "/delc_executor_test.dlr";
  {
    std::ofstream out(program);
    out << "main() add(40, 2)\n";
  }
  const std::string delc = std::string(DELIRIUM_DELC_PATH);

  // --executor sim rewrites --run onto the simulator (makespan line).
  auto [sim_status, sim_out] =
      run_command("env -u DELIRIUM_EXECUTOR " + delc + " --run --executor sim " + program);
  EXPECT_EQ(sim_status, 0);
  EXPECT_NE(sim_out.find("result: 42"), std::string::npos) << sim_out;
  EXPECT_NE(sim_out.find("virtual makespan"), std::string::npos) << sim_out;

  // The --executor=E form works, and threaded rewrites --sim back.
  auto [thr_status, thr_out] = run_command("env -u DELIRIUM_EXECUTOR " + delc +
                                           " --sim 4 --executor=threaded " + program);
  EXPECT_EQ(thr_status, 0);
  EXPECT_NE(thr_out.find("result: 42"), std::string::npos) << thr_out;
  EXPECT_EQ(thr_out.find("virtual makespan"), std::string::npos) << thr_out;

  // DELIRIUM_EXECUTOR wins over the flag.
  auto [env_status, env_out] = run_command("env DELIRIUM_EXECUTOR=sim " + delc +
                                           " --run --executor threaded " + program);
  EXPECT_EQ(env_status, 0);
  EXPECT_NE(env_out.find("virtual makespan"), std::string::npos) << env_out;

  // Unknown engines are a usage error.
  auto [bad_status, bad_out] =
      run_command("env -u DELIRIUM_EXECUTOR " + delc + " --executor warp " + program +
                  " 2>/dev/null");
  EXPECT_EQ(bad_status, 2) << bad_out;
}

TEST(Cli, AnalyzeJsonIsDeterministicAcrossSchedulersAndWorkers) {
  // The fact table is a pure function of (program, operator table):
  // scheduler choice, worker counts, and executor env must not move a
  // byte of the --analyze report.
  const std::string program = ::testing::TempDir() + "/delc_analyze_test.dlr";
  {
    std::ofstream out(program);
    out << "fortytwo() mul(6, 7)\n"
        << "main()\n"
        << "  let f(x, y) x\n"
        << "  in f(fortytwo(), 3)\n";
  }
  const std::string delc = std::string(DELIRIUM_DELC_PATH);
  const std::string base = " " + delc + " --analyze --format json --no-opt " + program;

  auto [ref_status, ref] = run_command("env -u DELIRIUM_SCHEDULER " + base);
  EXPECT_EQ(ref_status, 0);
  EXPECT_NE(ref.find("\"facts\""), std::string::npos) << ref;
  for (const char* env :
       {"DELIRIUM_SCHEDULER=global_lock", "DELIRIUM_SCHEDULER=work_stealing",
        "DELIRIUM_EXECUTOR=sim", "DELIRIUM_COST_HINTS=0"}) {
    auto [status, out] = run_command("env " + std::string(env) + base);
    EXPECT_EQ(status, 0) << env;
    EXPECT_EQ(out, ref) << env;
  }

  // Text mode goes through the same facts table; spot-check its sections.
  auto [text_status, text] = run_command("env -u DELIRIUM_SCHEDULER " + delc +
                                         " --analyze --no-opt " + program);
  EXPECT_EQ(text_status, 0);
  EXPECT_NE(text.find("analysis: template 'main'"), std::string::npos) << text;
  EXPECT_NE(text.find("dead params"), std::string::npos) << text;

  // The master kill switch removes the facts payload but keeps the
  // shared lint schema valid.
  auto [off_status, off] = run_command("env DELIRIUM_GRAPH_FACTS=0" + base);
  EXPECT_EQ(off_status, 0);
  EXPECT_NE(off.find("\"enabled\": false"), std::string::npos) << off;
  EXPECT_NE(off.find("\"findings\""), std::string::npos) << off;
}

}  // namespace
}  // namespace delirium::tools
