// GraphFacts engine tests: structure tables, interprocedural constants,
// liveness, static strandedness, critical-path heights, returns_fresh,
// the per-consumer kill switches, and the `--analyze` report contract
// (deterministic bytes, golden-tested schema).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>

#include "src/analysis/facts.h"
#include "src/delirium.h"
#include "src/tools/analysis_json.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ScopedEnv;

/// Every facts-related env knob, cleared for hermeticity: these tests
/// assert specific on/off behavior and must not inherit a CI job's
/// suite-wide exports.
constexpr std::initializer_list<const char*> kFactsEnv = {
    "DELIRIUM_GRAPH_FACTS",    "DELIRIUM_FACTS_FOLD", "DELIRIUM_FACTS_DEADPARAM",
    "DELIRIUM_FACTS_STRAND",   "DELIRIUM_FACTS_SOLE", "DELIRIUM_FACTS_FUSE",
    "DELIRIUM_FACTS_TUPLES",   "DELIRIUM_SCHED_HINTS", "DELIRIUM_COST_HINTS",
    "DELIRIUM_INJECT_FAULTS",  "DELIRIUM_RETRIES"};

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    reg.add("effectful", 1, [](OpContext& ctx) { return ctx.take(0); });
    reg.add("make", 1, [](OpContext& ctx) {
      return Value::block(std::vector<int64_t>(static_cast<size_t>(ctx.arg_int(0)), 0));
    });
    reg.add("poke", 2, [](OpContext& ctx) {
      auto& v = ctx.arg_block_mut<std::vector<int64_t>>(0);
      v[static_cast<size_t>(ctx.arg_int(1)) % v.size()] += ctx.arg_int(1);
      return ctx.take(0);
    }).destructive(0);
    reg.add("sum2", 2, [](OpContext& ctx) {
      int64_t total = 0;
      for (int64_t x : ctx.arg_block<std::vector<int64_t>>(0)) total += x;
      for (int64_t x : ctx.arg_block<std::vector<int64_t>>(1)) total += x;
      return Value::of(total);
    }).pure();
    return reg;
  }();
  return r;
}

/// Compile with AST optimization off so the graphs keep their calls and
/// the facts engine has real interprocedural structure to chew on.
CompileResult compile_no_opt(const std::string& source) {
  CompileOptions options;
  options.optimize = false;
  CompileResult result = compile_source("<facts-test>", source, registry(), options);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  return result;
}

uint32_t template_index(const CompiledProgram& program, const std::string& name) {
  for (uint32_t t = 0; t < program.templates.size(); ++t) {
    if (program.templates[t]->name == name) return t;
  }
  ADD_FAILURE() << "no template named " << name;
  return 0;
}

/// First node of `kind` in template `t`, or kNoNode.
uint32_t find_kind(const Template& t, NodeKind kind) {
  for (uint32_t i = 0; i < t.nodes.size(); ++i) {
    if (t.nodes[i].kind == kind) return i;
  }
  return 0xffffffffu;
}

// ---------------------------------------------------------------------------
// Structure
// ---------------------------------------------------------------------------

TEST(Facts, CallersClosureSitesAndCallOnly) {
  ScopedEnv env(kFactsEnv);
  CompileResult r = compile_no_opt(R"(
helper(x) add(x, 1)
main()
  let f(y) helper(y)
  in add(helper(1), f(2))
)");
  ASSERT_TRUE(r.has_facts);
  const uint32_t helper = template_index(r.program, "helper");
  const uint32_t local = template_index(r.program, "main$f0");
  // helper is called from main and from the local function.
  EXPECT_EQ(r.facts.callers[helper].size(), 2u);
  // The local function is materialized as a closure, so it can never be
  // call-only; helper is named (reachable via run_function), same.
  EXPECT_EQ(r.facts.closure_sites[local].size(), 1u);
  EXPECT_FALSE(r.facts.call_only[helper]);
  EXPECT_FALSE(r.facts.call_only[local]);
}

// ---------------------------------------------------------------------------
// Interprocedural constants
// ---------------------------------------------------------------------------

TEST(Facts, PureConstantCallResultsAreKnown) {
  ScopedEnv env(kFactsEnv);
  CompileResult r = compile_no_opt(R"(
fortytwo() mul(6, 7)
main() add(fortytwo(), 1)
)");
  ASSERT_TRUE(r.has_facts);
  const uint32_t main_t = template_index(r.program, "main");
  const Template& main_tmpl = *r.program.templates[main_t];
  const uint32_t call = find_kind(main_tmpl, NodeKind::kCall);
  ASSERT_NE(call, 0xffffffffu);
  ASSERT_TRUE(r.facts.constants[main_t][call].has_value());
  EXPECT_EQ(std::get<int64_t>(*r.facts.constants[main_t][call]), 42);
  const uint32_t ft = template_index(r.program, "fortytwo");
  EXPECT_TRUE(r.facts.pure_templates[ft]);
}

TEST(Facts, NamedTemplateParamsAreNeverAssumedConstant) {
  // helper(3) at every site — but helper is reachable by name through
  // run_function with arbitrary arguments, so its parameter must stay
  // unknown (the soundness contract of docs/ANALYSIS.md).
  ScopedEnv env(kFactsEnv);
  CompileResult r = compile_no_opt(R"(
helper(x) add(x, 1)
main() add(helper(3), helper(3))
)");
  ASSERT_TRUE(r.has_facts);
  const uint32_t helper = template_index(r.program, "helper");
  EXPECT_FALSE(r.facts.param_constants[helper][0].has_value());
}

TEST(Facts, ConstantCapturesFlowIntoClosures) {
  ScopedEnv env(kFactsEnv);
  CompileResult r = compile_no_opt(R"(
main()
  let c = 5
      f(x) add(x, c)
  in f(2)
)");
  ASSERT_TRUE(r.has_facts);
  const uint32_t local = template_index(r.program, "main$f0");
  const Template& t = *r.program.templates[local];
  // Explicit parameter x is filled at dynamic invocation sites: unknown.
  ASSERT_GE(t.num_params, 2u);
  EXPECT_FALSE(r.facts.param_constants[local][0].has_value());
  // The captured c is the constant 5 at the only closure site.
  const uint32_t capture = t.explicit_params();
  ASSERT_TRUE(r.facts.param_constants[local][capture].has_value());
  EXPECT_EQ(std::get<int64_t>(*r.facts.param_constants[local][capture]), 5);
}

TEST(Facts, ImpureOperatorsBlockConstantsAndPurity) {
  ScopedEnv env(kFactsEnv);
  CompileResult r = compile_no_opt(R"(
noisy() effectful(7)
main() noisy()
)");
  ASSERT_TRUE(r.has_facts);
  const uint32_t noisy = template_index(r.program, "noisy");
  const uint32_t main_t = template_index(r.program, "main");
  EXPECT_FALSE(r.facts.pure_templates[noisy]);
  const uint32_t call = find_kind(*r.program.templates[main_t], NodeKind::kCall);
  ASSERT_NE(call, 0xffffffffu);
  EXPECT_FALSE(r.facts.constants[main_t][call].has_value());
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

TEST(Facts, DeadParameterOfLocalFunctionDetected) {
  ScopedEnv env(kFactsEnv);
  CompileResult r = compile_no_opt(R"(
main()
  let f(x, y) x
  in f(7, add(1, 2))
)");
  ASSERT_TRUE(r.has_facts);
  const uint32_t local = template_index(r.program, "main$f0");
  ASSERT_EQ(r.facts.param_live[local].size(), 2u);
  EXPECT_TRUE(r.facts.param_live[local][0]);
  EXPECT_FALSE(r.facts.param_live[local][1]);
}

TEST(Facts, ImpureConsumersKeepParametersLive) {
  ScopedEnv env(kFactsEnv);
  CompileResult r = compile_no_opt(R"(
first(a, b) a
main()
  let f(x, y) first(x, effectful(y))
  in f(7, 8)
)");
  // The effectful use of y must keep it live even though the value never
  // reaches the function's result.
  ASSERT_TRUE(r.has_facts);
  const uint32_t local = template_index(r.program, "main$f0");
  ASSERT_GE(r.facts.param_live[local].size(), 2u);
  EXPECT_TRUE(r.facts.param_live[local][1]);
}

// ---------------------------------------------------------------------------
// Static strandedness — the compile-time deadlock diagnostic
// ---------------------------------------------------------------------------

/// Unconditional self-recursion: every node fires exactly once per
/// activation, so loop() can never deliver. Before the facts engine this
/// program compiled cleanly and only the runtime watchdog caught it.
constexpr const char* kStrandedProgram = R"(
loop(n) loop(add(n, 1))
main() loop(1)
)";

TEST(Facts, StaticStrandednessPromotesRuntimeDeadlockToCompileError) {
  ScopedEnv env(kFactsEnv);
  CompileOptions options;
  options.verify = true;
  CompileResult r = compile_source("<stranded>", kStrandedProgram, registry(), options);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.diagnostics.find("statically stranded"), std::string::npos) << r.diagnostics;
  EXPECT_NE(r.diagnostics.find("never delivers"), std::string::npos) << r.diagnostics;
}

TEST(Facts, StrandednessTablesNameTheDivergingTemplates) {
  ScopedEnv env(kFactsEnv);
  // Disable the diagnostic so the compile goes through, then inspect the
  // raw tables the verifier would have promoted.
  env.set("DELIRIUM_FACTS_STRAND", "0");
  CompileResult r = compile_source("<stranded>", kStrandedProgram, registry(), {});
  ASSERT_TRUE(r.ok) << r.diagnostics;

  const GraphFacts facts = compute_graph_facts(r.program, registry(), FactsOptions());
  const uint32_t loop = template_index(r.program, "loop");
  const uint32_t main_t = template_index(r.program, "main");
  EXPECT_FALSE(facts.delivers[loop]);
  EXPECT_FALSE(facts.delivers[main_t]);  // its result routes through loop()
  ASSERT_FALSE(facts.stranded.empty());
  // Deterministic ordering: template-major; within a template the
  // template-level fact (node == kNoNode) leads its node-level facts.
  auto key = [](const StrandedFact& f) {
    const int64_t node = f.node == StrandedFact::kNoNode ? -1 : static_cast<int64_t>(f.node);
    return std::make_pair(f.tmpl, node);
  };
  for (size_t i = 1; i < facts.stranded.size(); ++i) {
    EXPECT_TRUE(key(facts.stranded[i - 1]) <= key(facts.stranded[i])) << i;
  }
}

TEST(Facts, ConditionalRecursionIsNotStranded) {
  ScopedEnv env(kFactsEnv);
  CompileOptions options;
  options.verify = true;
  CompileResult r = compile_source("<fib>", R"(
fib(n)
  if less_than(n, 2)
    then n
    else add(fib(sub(n, 1)), fib(sub(n, 2)))
main() fib(10)
)",
                                   registry(), options);
  EXPECT_TRUE(r.ok) << r.diagnostics;
  ASSERT_TRUE(r.has_facts);
  EXPECT_TRUE(r.facts.stranded.empty());
}

// ---------------------------------------------------------------------------
// Critical path
// ---------------------------------------------------------------------------

TEST(Facts, HeightsMarkTheLongChainNotTheShallowOne) {
  ScopedEnv env(kFactsEnv);
  // add(deep, 7): the four-mul chain bounds the span; the literal 7 does
  // not. Exactly the shallow constant should be off the critical path.
  CompileResult r = compile_no_opt("main() add(mul(mul(mul(2, 2), 2), 2), 7)");
  ASSERT_TRUE(r.has_facts);
  EXPECT_GT(r.sched_hint_nodes, 0u);
  const uint32_t main_t = template_index(r.program, "main");
  const Template& t = *r.program.templates[main_t];
  EXPECT_GT(r.facts.template_height[main_t], 0);
  size_t off_path = 0;
  for (uint32_t i = 0; i < t.nodes.size(); ++i) {
    EXPECT_EQ(t.nodes[i].on_critical_path, r.facts.on_critical_path[main_t][i] != 0);
    off_path += t.nodes[i].on_critical_path ? 0 : 1;
  }
  EXPECT_GT(off_path, 0u);
  // The return's chain is maximal by construction.
  EXPECT_TRUE(t.nodes[t.return_node].on_critical_path);
}

TEST(Facts, CostHintsSteerEnqueuesAndAreKillSwitchable) {
  ScopedEnv env(kFactsEnv);
  CompileResult r = compile_no_opt("main() add(mul(mul(mul(2, 2), 2), 2), 7)");
  ASSERT_GT(r.sched_hint_nodes, 0u);

  RuntimeConfig config;
  config.num_workers = 2;
  Runtime with_hints(registry(), config);
  EXPECT_EQ(with_hints.run(r.program).as_int(), 23);
  EXPECT_GT(with_hints.last_stats().sched_hint_promotions, 0u);

  env.set("DELIRIUM_COST_HINTS", "0");
  Runtime without(registry(), config);
  EXPECT_EQ(without.run(r.program).as_int(), 23);
  EXPECT_EQ(without.last_stats().sched_hint_promotions, 0u);
}

TEST(Facts, HintPromotionCountIsDeterministicAcrossTheMatrix) {
  ScopedEnv env(kFactsEnv);
  CompileResult r = compile_no_opt(R"(
step(x) add(mul(x, 3), 1)
main() add(step(step(step(1))), add(step(2), 7))
)");
  ASSERT_TRUE(r.has_facts);
  testing::ExecutorFixture fixture(registry());
  const testing::ExecutorOutcome ref = fixture.expect_equivalent(r.program);
  for (const testing::ExecutorSpec& spec : fixture.matrix()) {
    const testing::ExecutorOutcome got = fixture.run_on(r.program, spec);
    EXPECT_EQ(got.stats.sched_hint_promotions, ref.stats.sched_hint_promotions)
        << spec.name();
  }
}

// ---------------------------------------------------------------------------
// returns_fresh and the sole-consumer upgrade
// ---------------------------------------------------------------------------

TEST(Facts, FreshReturnsUpgradeCallResultsToUnique) {
  ScopedEnv env(kFactsEnv);
  // fresh() manufactures its block from a literal inside the activation;
  // the caller's poke of the call result is provably unique, so the CoW
  // test and the clone are both elided. Intraprocedurally this edge was
  // kUnknown. (make(n) with a *parameter* would NOT be fresh: an
  // operator may pass an argument through, and params alias the caller.)
  CompileResult r = compile_no_opt(R"(
fresh() make(8)
main() sum2(poke(fresh(), 3), make(1))
)");
  ASSERT_TRUE(r.has_facts);
  const uint32_t fresh = template_index(r.program, "fresh");
  EXPECT_TRUE(r.facts.returns_fresh[fresh]);
  EXPECT_GT(r.sole_consumer.unique_edges, 0u);

  // The upgrade has its own kill switch.
  env.set("DELIRIUM_FACTS_SOLE", "0");
  CompileResult off = compile_no_opt(R"(
fresh() make(8)
main() sum2(poke(fresh(), 3), make(1))
)");
  EXPECT_EQ(off.sole_consumer.unique_edges, 0u);
}

// ---------------------------------------------------------------------------
// Kill switches
// ---------------------------------------------------------------------------

TEST(Facts, MasterSwitchDisablesTheEngine) {
  ScopedEnv env(kFactsEnv);
  env.set("DELIRIUM_GRAPH_FACTS", "0");
  CompileResult r = compile_no_opt("main() add(1, 2)");
  EXPECT_FALSE(r.has_facts);
  EXPECT_EQ(r.sched_hint_nodes, 0u);
  // The stranded program compiles again — pre-facts behavior restored.
  CompileOptions options;
  options.verify = true;
  CompileResult stranded =
      compile_source("<stranded>", kStrandedProgram, registry(), options);
  EXPECT_TRUE(stranded.ok) << stranded.diagnostics;
}

TEST(Facts, SchedHintSwitchZeroesTheMarks) {
  ScopedEnv env(kFactsEnv);
  env.set("DELIRIUM_SCHED_HINTS", "0");
  CompileResult r = compile_no_opt("main() add(mul(mul(2, 2), 2), 7)");
  ASSERT_TRUE(r.has_facts);
  EXPECT_EQ(r.sched_hint_nodes, 0u);
  for (const auto& t : r.program.templates) {
    for (const Node& n : t->nodes) EXPECT_FALSE(n.on_critical_path);
  }
}

// ---------------------------------------------------------------------------
// Rewrites preserve behavior across the whole executor matrix
// ---------------------------------------------------------------------------

/// Node ids and sequence numbers legitimately shift when rewrites remove
/// nodes; scrubbing digits compares everything else about a fault report
/// (operator, template names, stack shape) byte for byte.
std::string scrub_digits(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c >= '0' && c <= '9') c = '#';
  }
  return out;
}

/// Compile `source` twice — facts-driven rewrites on and off — and prove
/// the two programs agree on values, fault behavior, and (digit-scrubbed)
/// error text everywhere the fixture runs (both executors × both
/// schedulers × {1, 2, 8} workers); each program additionally proves its
/// own byte-identical error text and trace-multiset determinism across
/// the matrix inside expect_equivalent. AST inlining is off so the
/// cross-function folding under test happens at the graph level, not
/// upstream in the tree optimizer.
CompileResult expect_rewrites_preserve(const OperatorRegistry& reg,
                                       const std::string& source) {
  CompileOptions options;
  options.optimize = true;
  options.opt.inline_expansion = false;
  CompileResult optimized = compile_source("<opt>", source, reg, options);
  EXPECT_TRUE(optimized.ok) << optimized.diagnostics;
  if (!optimized.ok) return optimized;

  CompiledProgram plain = [&] {
    ScopedEnv env({"DELIRIUM_GRAPH_FACTS"});
    env.set("DELIRIUM_GRAPH_FACTS", "0");
    CompileResult r = compile_source("<plain>", source, reg, options);
    EXPECT_TRUE(r.ok) << r.diagnostics;
    return std::move(r.program);
  }();

  testing::ExecutorFixture fixture(reg);
  const testing::ExecutorOutcome a = fixture.expect_equivalent(optimized.program);
  const testing::ExecutorOutcome b = fixture.expect_equivalent(plain);
  EXPECT_EQ(a.faulted(), b.faulted());
  if (a.faulted() && b.faulted()) {
    EXPECT_EQ(scrub_digits(a.error_text), scrub_digits(b.error_text));
    EXPECT_EQ(a.stats.faults_raised, b.stats.faults_raised);
    EXPECT_EQ(a.stats.faults_injected, b.stats.faults_injected);
  } else if (!a.faulted() && !b.faulted()) {
    EXPECT_TRUE(deep_equal(a.value, b.value));
  }
  return optimized;
}

TEST(FactsEquivalence, FoldedCallsProduceIdenticalValues) {
  ScopedEnv env(kFactsEnv);
  CompileResult r = expect_rewrites_preserve(registry(), R"(
base() mul(6, 7)
twice() add(base(), base())
main() add(twice(), mul(base(), 2))
)");
  // The rewrite actually fired: this is a fold-vs-no-fold comparison,
  // not two identical programs.
  EXPECT_GT(r.graph_opt_stats.consts_folded, 0u);
}

TEST(FactsEquivalence, DeadCapturePruningPreservesValues) {
  ScopedEnv env(kFactsEnv);
  // drop()'s second parameter is dead (named template: detected, kept).
  // The closure f uses its capture c only to feed that dead parameter,
  // so the capture is interprocedurally dead and — f being anonymous —
  // actually pruned, along with the chain that fed it. c is a call
  // result, not a literal: the AST optimizer cannot substitute it into
  // the closure body, so the capture genuinely reaches the graph pass.
  CompileResult r = expect_rewrites_preserve(registry(), R"(
drop(a, b) a
base() mul(6, 7)
main()
  let c = base()
      f(x) drop(x, c)
  in add(f(3), f(4))
)");
  EXPECT_GT(r.graph_opt_stats.dead_params_pruned, 0u);
  EXPECT_GT(r.graph_opt_stats.dead_nodes_removed, 0u);
}

TEST(FactsEquivalence, FoldingCannotSwallowAFaultFromAnImpureOp) {
  ScopedEnv env(kFactsEnv);
  // `base()` is foldable; the effectful op next to it throws via the
  // injection plan. Folding must not change which fault surfaces or its
  // report text — the impure op is never folded, so the fault survives.
  env.set("DELIRIUM_INJECT_FAULTS", "effectful:throw");
  expect_rewrites_preserve(registry(), R"(
base() mul(6, 7)
main() add(effectful(1), base())
)");
}

TEST(FactsEquivalence, RetriedFaultsMatchUnderInjection) {
  ScopedEnv env(kFactsEnv);
  // A transient fault (fails once, then succeeds under retry) on the
  // impure op, with the pure neighbor folded: the retried run must still
  // deliver the right value with identical retry counters everywhere.
  env.set("DELIRIUM_INJECT_FAULTS", "effectful:throw:fail_attempts=1");

  CompileResult optimized = compile_source("<opt>", R"(
base() mul(6, 7)
main() add(effectful(1), base())
)",
                                           registry(), {});
  ASSERT_TRUE(optimized.ok) << optimized.diagnostics;

  testing::ExecutorFixture fixture(registry());
  fixture.config().max_retries = 2;
  const testing::ExecutorOutcome ref = fixture.expect_equivalent(optimized.program);
  ASSERT_FALSE(ref.faulted()) << ref.error_text;
  EXPECT_EQ(ref.value.as_int(), 43);
  EXPECT_EQ(ref.stats.retries, 1u);
}

// ---------------------------------------------------------------------------
// The --analyze report
// ---------------------------------------------------------------------------

/// The golden program exercises every section: a pure constant-returning
/// helper, a local function with a dead parameter, and a destructive use
/// of a shared block (one lint warning).
constexpr const char* kAnalyzeProgram = R"(
fortytwo() mul(6, 7)
main()
  let b = make(8)
      f(x, y) x
  in sum2(poke(b, f(fortytwo(), 3)), b)
)";

TEST(Analyze, JsonMatchesGoldenFile) {
  ScopedEnv env(kFactsEnv);
  CompileResult result = compile_no_opt(kAnalyzeProgram);
  SourceFile file("analyze_shared.dlr", kAnalyzeProgram);
  const std::string json = tools::render_analysis_json(result, file);

  const std::string golden_path = std::string(DELIRIUM_GOLDEN_DIR) + "/analyze_shared.json";
  if (std::getenv("DELIRIUM_REGEN_GOLDEN") != nullptr) {
    std::ofstream(golden_path) << json;
  }
  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden.good()) << "missing golden file";
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(json, expected.str());
}

TEST(Analyze, ReportBytesAreDeterministicAcrossRecompiles) {
  ScopedEnv env(kFactsEnv);
  SourceFile file("analyze_shared.dlr", kAnalyzeProgram);
  CompileResult a = compile_no_opt(kAnalyzeProgram);
  CompileResult b = compile_no_opt(kAnalyzeProgram);
  EXPECT_EQ(tools::render_analysis_json(a, file), tools::render_analysis_json(b, file));
  EXPECT_EQ(tools::render_analysis_text(a, file), tools::render_analysis_text(b, file));
}

TEST(Analyze, TextReportNamesEverySection) {
  ScopedEnv env(kFactsEnv);
  CompileResult result = compile_no_opt(kAnalyzeProgram);
  SourceFile file("analyze_shared.dlr", kAnalyzeProgram);
  const std::string text = tools::render_analysis_text(result, file);
  EXPECT_NE(text.find("template 'main'"), std::string::npos) << text;
  EXPECT_NE(text.find("template 'fortytwo'"), std::string::npos) << text;
  EXPECT_NE(text.find("dead params"), std::string::npos) << text;
  EXPECT_NE(text.find("analysis: lint:"), std::string::npos) << text;
  EXPECT_NE(text.find("analysis: sched hints:"), std::string::npos) << text;
}

}  // namespace
}  // namespace delirium
