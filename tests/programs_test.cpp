// File-driven tests: every .dlr program under examples/programs must
// compile against the built-in operators alone and produce its golden
// result, at several worker counts and under virtual time. Also fuzz
// robustness: mutated sources must produce diagnostics, never crashes.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/delirium.h"
#include "src/lang/pretty.h"
#include "src/runtime/sim.h"
#include "src/support/rng.h"

#ifndef DELIRIUM_PROGRAMS_DIR
#define DELIRIUM_PROGRAMS_DIR "examples/programs"
#endif

namespace delirium {
namespace {

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    return reg;
  }();
  return r;
}

std::string read_program(const std::string& name) {
  const std::string path = std::string(DELIRIUM_PROGRAMS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Golden {
  const char* file;
  double expected;
  double tolerance;  // 0 = exact integer
};

class DlrPrograms : public ::testing::TestWithParam<Golden> {};

TEST_P(DlrPrograms, ComputesGoldenResultEverywhere) {
  const Golden golden = GetParam();
  const std::string source = read_program(golden.file);
  CompiledProgram program = compile_or_throw(source, registry());

  auto check = [&](const Value& v, const std::string& where) {
    if (golden.tolerance == 0) {
      EXPECT_EQ(v.as_int(), static_cast<int64_t>(golden.expected)) << where;
    } else {
      EXPECT_NEAR(v.as_float(), golden.expected, golden.tolerance) << where;
    }
  };
  for (int workers : {1, 4}) {
    Runtime runtime(registry(), {.num_workers = workers});
    check(runtime.run(program), std::string(golden.file) + " workers=" +
                                    std::to_string(workers));
  }
  SimRuntime sim(registry(), {.num_procs = 3});
  check(sim.run(program).result, std::string(golden.file) + " (virtual)");
}

INSTANTIATE_TEST_SUITE_P(
    Programs, DlrPrograms,
    ::testing::Values(Golden{"fib.dlr", 2584, 0},          // fib(18)
                      Golden{"queens.dlr", 4, 0},          // 6-queens
                      Golden{"pi.dlr", 3.14159265, 1e-6},  // integration
                      Golden{"loops.dlr", 42925, 0},       // sum i^2, 1..50
                      Golden{"mergesort.dlr", 336115745227.0, 0},
                      Golden{"primes.dlr", 46, 0}),  // primes below 200
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string name = info.param.file;
      return name.substr(0, name.find('.'));
    });

TEST(DlrPrograms, UnoptimizedAgrees) {
  for (const char* file : {"fib.dlr", "queens.dlr", "loops.dlr"}) {
    const std::string source = read_program(file);
    CompileOptions no_opt;
    no_opt.optimize = false;
    CompiledProgram plain = compile_or_throw(source, registry(), no_opt);
    CompiledProgram optimized = compile_or_throw(source, registry());
    Runtime runtime(registry(), {.num_workers = 2});
    EXPECT_TRUE(deep_equal(runtime.run(plain), runtime.run(optimized))) << file;
  }
}

TEST(DlrPrograms, PrettyPrintedFormsRecompileAndAgree) {
  // End-to-end round trip through *text*: parse, pretty-print, recompile
  // the printed form, and run both — a stronger property than structural
  // AST equality.
  for (const char* file : {"fib.dlr", "queens.dlr", "loops.dlr", "mergesort.dlr"}) {
    const std::string source = read_program(file);
    SourceFile sf("<orig>", source);
    DiagnosticEngine diags;
    AstContext ctx;
    Program parsed = parse_source(sf, ctx, diags);
    ASSERT_FALSE(diags.has_errors()) << file;
    const std::string printed = program_to_string(parsed);

    CompiledProgram original = compile_or_throw(source, registry());
    CompiledProgram reprinted = compile_or_throw(printed, registry());
    Runtime runtime(registry(), {.num_workers = 2});
    EXPECT_TRUE(deep_equal(runtime.run(original), runtime.run(reprinted)))
        << file << " diverged after pretty-printing:\n" << printed;
  }
}

// --- fuzz robustness ---------------------------------------------------------

TEST(FrontendFuzz, MutatedSourcesNeverCrashTheCompiler) {
  const std::string base = read_program("queens.dlr");
  SplitMix64 rng(2026);
  int compiled = 0, rejected = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.next_below(4));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0: mutated[pos] = static_cast<char>(rng.next_range(32, 126)); break;
        case 1: mutated.erase(pos, 1 + rng.next_below(5)); break;
        default:
          mutated.insert(pos, std::string(1 + rng.next_below(3),
                                          static_cast<char>(rng.next_range(32, 126))));
          break;
      }
    }
    // Must not crash or hang; may succeed or report diagnostics.
    CompileResult result = compile_source("<fuzz>", mutated, registry());
    if (result.ok) {
      ++compiled;
      EXPECT_EQ(validate_graph(result.program), "") << "trial " << trial;
    } else {
      ++rejected;
      EXPECT_FALSE(result.diagnostics.empty()) << "trial " << trial;
    }
  }
  // Sanity: the fuzz actually exercised both outcomes.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(compiled + rejected, 0);
}

TEST(FrontendFuzz, RandomGarbageIsRejectedGracefully) {
  SplitMix64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage;
    const size_t len = 1 + rng.next_below(400);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.next_range(9, 126)));
    }
    CompileResult result = compile_source("<garbage>", garbage, registry());
    if (result.ok) {
      EXPECT_EQ(validate_graph(result.program), "");
    }
  }
}

}  // namespace
}  // namespace delirium
