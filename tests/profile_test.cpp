// Trace-driven cost profiles (docs/PROFILING.md): round-trip of the
// JSON calibration format, profile determinism across executors,
// capacity-plan golden output, malformed-profile diagnostics, and the
// cost-hint equivalence proof (feedback scheduling changes only the
// schedule, never values or faults).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <sys/wait.h>

#include "src/core/compiler.h"
#include "src/tools/analysis_json.h"
#include "src/tools/profile.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ExecutorFixture;
using testing::ExecutorSpec;
using testing::ScopedEnv;

/// Every knob that could perturb schedules, costs, or hint marks —
/// cleared so CI jobs with suite-wide exports stay hermetic.
constexpr std::initializer_list<const char*> kProfileEnv = {
    "DELIRIUM_GRAPH_FACTS", "DELIRIUM_FACTS_FOLD",  "DELIRIUM_FACTS_DEADPARAM",
    "DELIRIUM_FACTS_STRAND", "DELIRIUM_FACTS_SOLE", "DELIRIUM_FACTS_FUSE",
    "DELIRIUM_FACTS_TUPLES", "DELIRIUM_SCHED_HINTS", "DELIRIUM_COST_HINTS",
    "DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES",    "DELIRIUM_SCHEDULER",
    "DELIRIUM_EXECUTOR",      "DELIRIUM_TRACE",      "DELIRIUM_TRACE_CAPACITY",
    "DELIRIUM_ACTIVATION_POOL"};

OperatorRegistry& registry() {
  static OperatorRegistry* reg = [] {
    auto* r = new OperatorRegistry();
    register_builtin_operators(*r);
    return r;
  }();
  return *reg;
}

/// Compile with the AST optimizer off, as facts_test does: the fan
/// program below is all-constant, and folding it away would leave the
/// traces (and therefore the profiles and plans) empty.
CompileResult compile(const std::string& source) {
  CompileOptions options;
  options.optimize = false;
  CompileResult result = compile_source("profile_test.dlr", source, registry(), options);
  EXPECT_TRUE(result.ok) << result.diagnostics;
  return result;
}

/// A diamond with an add-reduction tail: enough parallel slack that the
/// 1 -> 2 -> 4 worker sweep produces distinct makespans.
constexpr const char* kFanProgram = R"(
main()
  let a = mul(2, 3)
      b = mul(4, 5)
      c = mul(6, 7)
      d = mul(8, 9)
  in add(add(a, b), add(c, d))
)";

/// A handcrafted profile with known shape: mul is 10x the cost of add.
tools::CostProfile fan_profile() {
  tools::CostProfile profile;
  for (int i = 0; i < 4; ++i) profile.operators["mul"].observe(10000);
  for (int i = 0; i < 3; ++i) profile.operators["add"].observe(1000);
  return profile;
}

// ---------------------------------------------------------------------------
// Round-trip
// ---------------------------------------------------------------------------

TEST(Profile, WriteLoadWriteIsByteIdentical) {
  tools::CostProfile profile = fan_profile();
  profile.operators["odd \"name\""].observe(7);  // escaping survives too
  const std::string once = tools::cost_profile_to_json(profile);
  const tools::CostProfile loaded = tools::load_cost_profile(once);
  EXPECT_EQ(tools::cost_profile_to_json(loaded), once);
  // The restored histograms answer queries identically, not just
  // serialize identically.
  EXPECT_EQ(loaded.operators.at("mul").count(), 4u);
  EXPECT_EQ(loaded.operators.at("mul").total(), 40000);
  EXPECT_EQ(loaded.operators.at("mul").percentile(0.99),
            profile.operators.at("mul").percentile(0.99));
}

TEST(Profile, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/profile_roundtrip.json";
  const tools::CostProfile profile = fan_profile();
  ASSERT_TRUE(tools::write_cost_profile_file(path, profile));
  const tools::CostProfile loaded = tools::load_cost_profile_file(path);
  EXPECT_EQ(tools::cost_profile_to_json(loaded), tools::cost_profile_to_json(profile));
  std::remove(path.c_str());
}

TEST(Profile, EmptyProfileRoundTrips) {
  const tools::CostProfile empty;
  const std::string json = tools::cost_profile_to_json(empty);
  EXPECT_EQ(tools::cost_profile_to_json(tools::load_cost_profile(json)), json);
}

// ---------------------------------------------------------------------------
// Building from traces
// ---------------------------------------------------------------------------

TEST(Profile, SimProfileIsByteDeterministicUnderFixedCosts) {
  ScopedEnv env(kProfileEnv);
  CompileResult result = compile(kFanProgram);
  const std::unordered_map<std::string, Ticks> fixed = {{"mul", 5000}, {"add", 700}};
  auto profile_once = [&] {
    SimConfig config;
    config.num_procs = 2;
    config.enable_tracing = true;
    config.fixed_costs = &fixed;
    SimRuntime sim(registry(), config);
    sim.run(result.program);
    return tools::cost_profile_to_json(
        tools::profile_from_trace(sim.trace_events(), registry()));
  };
  const std::string first = profile_once();
  EXPECT_EQ(profile_once(), first);
  // Under fixed costs the virtual begin/end deltas ARE the fixed costs.
  const tools::CostProfile profile = tools::load_cost_profile(first);
  EXPECT_EQ(profile.operators.at("mul").min(), 5000);
  EXPECT_EQ(profile.operators.at("mul").max(), 5000);
  EXPECT_EQ(profile.operators.at("add").min(), 700);
}

TEST(Profile, SimAndThreadedProfilesAgreeOnAttemptCounts) {
  ScopedEnv env(kProfileEnv);
  CompileResult result = compile(kFanProgram);
  auto counts = [&](const tools::CostProfile& p) {
    std::map<std::string, uint64_t> out;
    for (const auto& [op, h] : p.operators) out[op] = h.count();
    return out;
  };
  SimConfig sconfig;
  sconfig.num_procs = 4;
  sconfig.enable_tracing = true;
  SimRuntime sim(registry(), sconfig);
  sim.run(result.program);
  const auto sim_counts =
      counts(tools::profile_from_trace(sim.trace_events(), registry()));

  RuntimeConfig rconfig;
  rconfig.num_workers = 4;
  rconfig.enable_tracing = true;
  Runtime runtime(registry(), rconfig);
  runtime.run(result.program);
  const auto thr_counts =
      counts(tools::profile_from_trace(runtime.trace_events(), registry()));

  EXPECT_EQ(sim_counts, thr_counts);
  EXPECT_EQ(sim_counts.at("mul"), 4u);
  EXPECT_EQ(sim_counts.at("add"), 3u);
}

// ---------------------------------------------------------------------------
// Malformed profiles
// ---------------------------------------------------------------------------

void expect_error_naming(const std::string& text, const std::string& field) {
  try {
    tools::load_cost_profile(text);
    FAIL() << "expected std::invalid_argument naming " << field;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(field), std::string::npos) << e.what();
  }
}

TEST(Profile, MalformedProfileNamesTheOffendingField) {
  expect_error_naming(R"({"schema": "bogus", "version": 1, "operators": {}})", "schema");
  expect_error_naming(
      R"({"schema": "delirium.cost_profile", "version": 9, "operators": {}})", "version");
  expect_error_naming(R"({"schema": "delirium.cost_profile", "version": 1})", "operators");
  // count disagrees with the bucket sum.
  expect_error_naming(
      R"({"schema": "delirium.cost_profile", "version": 1, "operators": {
            "add": {"count": 3, "total_ns": 10, "min_ns": 1, "max_ns": 9,
                    "buckets": {"2": 2}}}})",
      "operators.add.count");
  // bucket index out of range.
  expect_error_naming(
      R"({"schema": "delirium.cost_profile", "version": 1, "operators": {
            "add": {"count": 1, "total_ns": 10, "min_ns": 10, "max_ns": 10,
                    "buckets": {"77": 1}}}})",
      "operators.add.buckets.77");
  // unknown per-operator field.
  expect_error_naming(
      R"({"schema": "delirium.cost_profile", "version": 1, "operators": {
            "add": {"count": 0, "total_ns": 0, "min_ns": 0, "max_ns": 0,
                    "buckets": {}, "bogus": 1}}})",
      "operators.add.bogus");
  expect_error_naming("not json at all", "cost profile");
}

// ---------------------------------------------------------------------------
// Cost model distillation
// ---------------------------------------------------------------------------

TEST(Profile, CostModelUsesPerOperatorMeans) {
  const CostModel model = tools::to_cost_model(fan_profile());
  EXPECT_EQ(model.cost_of("mul"), 10000);
  EXPECT_EQ(model.cost_of("add"), 1000);
  // Unprofiled operators fall back to the profile-wide mean.
  EXPECT_EQ(model.cost_of("never_seen"), model.default_cost_ns);
  EXPECT_GT(model.default_cost_ns, 1000);
  EXPECT_LT(model.default_cost_ns, 10000);
}

TEST(Profile, BudgetFromProfileIsHeadroomedP99Sum) {
  const tools::CostProfile profile = fan_profile();
  int64_t p99_sum = 0;
  for (const auto& [op, h] : profile.operators) {
    p99_sum += static_cast<int64_t>(h.count()) * h.percentile(0.99);
  }
  EXPECT_EQ(tools::budget_from_profile(profile), tools::kBudgetHeadroom * p99_sum);
  EXPECT_GT(p99_sum, 0);
  EXPECT_EQ(tools::budget_from_profile(tools::CostProfile{}), 0);
}

// ---------------------------------------------------------------------------
// Capacity planning
// ---------------------------------------------------------------------------

TEST(Plan, GoldenJson) {
  ScopedEnv env(kProfileEnv);
  CompileResult result = compile(kFanProgram);
  const tools::CapacityPlan plan =
      tools::plan_capacity(result.program, registry(), fan_profile(), {1, 2, 4},
                           /*target_ns=*/20000);
  const std::string json = tools::render_plan_json(plan, "profile_test.dlr");

  const std::string golden_path = std::string(DELIRIUM_GOLDEN_DIR) + "/plan_shared.json";
  if (std::getenv("DELIRIUM_REGEN_GOLDEN") != nullptr) {
    std::ofstream(golden_path) << json;
  }
  std::ifstream golden(golden_path);
  ASSERT_TRUE(golden.good()) << "missing golden file";
  std::ostringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(json, expected.str());
}

TEST(Plan, SweepIsDeterministicAndMonotonicallySummarized) {
  ScopedEnv env(kProfileEnv);
  CompileResult result = compile(kFanProgram);
  const tools::CapacityPlan a =
      tools::plan_capacity(result.program, registry(), fan_profile());
  const tools::CapacityPlan b =
      tools::plan_capacity(result.program, registry(), fan_profile());
  ASSERT_EQ(a.points.size(), b.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].makespan_ns, b.points[i].makespan_ns) << i;
  }
  EXPECT_EQ(a.serial_makespan_ns, a.points.front().makespan_ns);
  EXPECT_GT(a.best_workers, 0);
  EXPECT_GT(a.knee_workers, 0);
  EXPECT_LE(a.knee_workers, a.best_workers);
  EXPECT_LE(a.best_makespan_ns, a.serial_makespan_ns);
  // The fan-out has real parallel slack: two workers beat one.
  EXPECT_LT(a.points[1].makespan_ns, a.points[0].makespan_ns);
}

TEST(Plan, TextReportNamesTheSummary) {
  ScopedEnv env(kProfileEnv);
  CompileResult result = compile(kFanProgram);
  const tools::CapacityPlan plan = tools::plan_capacity(
      result.program, registry(), fan_profile(), {1, 2}, /*target_ns=*/1);
  const std::string text = tools::render_plan_text(plan, "profile_test.dlr");
  EXPECT_NE(text.find("plan: profile_test.dlr"), std::string::npos) << text;
  EXPECT_NE(text.find("best:"), std::string::npos) << text;
  EXPECT_NE(text.find("knee:"), std::string::npos) << text;
  // A 1 ns target is unmeetable and must say so rather than pick 0.
  EXPECT_NE(text.find("not met"), std::string::npos) << text;
  EXPECT_EQ(plan.target_workers, 0);
}

// ---------------------------------------------------------------------------
// Feedback scheduling: equivalence + the promotion counter
// ---------------------------------------------------------------------------

/// Recursion plus fan-out, so hints have schedules to steer everywhere.
constexpr const char* kEquivalenceProgram = R"(
fib(n)
  if less_than(n, 2) then n
  else add(fib(sub(n, 1)), fib(sub(n, 2)))
main()
  let a = fib(8)
      b = mul(3, 4)
      c = mul(5, 6)
  in add(a, add(b, c))
)";

TEST(CostHints, ValuesAndFaultsAreIdenticalWithHintsOnAndOff) {
  ScopedEnv env(kProfileEnv);
  // Re-mark the program from a deliberately skewed cost model, then run
  // the whole executor matrix with hints honored and ignored: the
  // fixture asserts deep-equal values, identical fault counters, and
  // equal deterministic trace multisets against the reference executor.
  CompileResult result = compile(kEquivalenceProgram);
  CostModel model;
  model.op_cost_ns = {{"mul", 500000}, {"add", 200}, {"sub", 100}, {"less_than", 50}};
  const size_t marked = apply_sched_hints(result.program, result.facts, model);
  ASSERT_GT(marked, 0u);

  ExecutorFixture on;
  on.config().cost_hints = true;
  const Value with_hints = on.expect_equivalent(result.program).value_or_rethrow();

  ExecutorFixture off;
  off.config().cost_hints = false;
  const Value without = off.expect_equivalent(result.program).value_or_rethrow();
  EXPECT_TRUE(deep_equal(with_hints, without));
}

TEST(CostHints, FaultingRunsReportIdenticallyWithHintsOnAndOff) {
  ScopedEnv env(kProfileEnv);
  CompileResult result = compile(kEquivalenceProgram);
  CostModel model;
  model.op_cost_ns = {{"mul", 900000}};
  ASSERT_GT(apply_sched_hints(result.program, result.facts, model), 0u);

  auto fault_text = [&](bool hints) {
    SimConfig config;
    config.cost_hints = hints;
    config.num_procs = 4;
    // A deterministic structural injection: every 2nd mul attempt throws.
    OperatorRegistry faulty;
    register_builtin_operators(faulty);
    faulty.set_fault_plan(std::make_shared<const FaultPlan>(
        FaultPlan::parse("mul:throw:every=2")));
    SimRuntime faulty_sim(faulty, config);
    try {
      faulty_sim.run(result.program);
      return std::string("no fault");
    } catch (const std::exception& e) {
      return std::string(e.what());
    }
  };
  EXPECT_EQ(fault_text(true), fault_text(false));
}

TEST(CostHints, SimCountsCostPromotionsSeparately) {
  ScopedEnv env(kProfileEnv);
  CompileResult result = compile(kEquivalenceProgram);
  CostModel model;
  model.op_cost_ns = {{"mul", 500000}};
  ASSERT_GT(apply_sched_hints(result.program, result.facts, model), 0u);

  SimConfig config;
  config.num_procs = 2;
  SimRuntime sim(registry(), config);
  sim.run(result.program);
  // Cost-derived marks land in the dedicated counter, not the static one.
  EXPECT_GT(sim.last_stats().sched_cost_promotions, 0u);
  EXPECT_EQ(sim.last_stats().sched_hint_promotions, 0u);

  // The kill switch suppresses both.
  SimConfig off = config;
  off.cost_hints = false;
  SimRuntime sim_off(registry(), off);
  sim_off.run(result.program);
  EXPECT_EQ(sim_off.last_stats().sched_cost_promotions, 0u);
  EXPECT_EQ(sim_off.last_stats().sched_hint_promotions, 0u);
}

TEST(CostHints, CostOverloadRespectsDisabledHeightsAnalysis) {
  ScopedEnv env(kProfileEnv);
  env.set("DELIRIUM_SCHED_HINTS", "0");
  CompileResult result = compile(kEquivalenceProgram);
  CostModel model;
  model.op_cost_ns = {{"mul", 500000}};
  // Heights were never computed, so the cost overload must mark nothing.
  EXPECT_EQ(apply_sched_hints(result.program, result.facts, model), 0u);
}

// ---------------------------------------------------------------------------
// delc end-to-end: --plan bytes survive flag and executor perturbation
// ---------------------------------------------------------------------------

std::pair<int, std::string> run_command(const std::string& command) {
  FILE* pipe = ::popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return {-1, ""};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) out.append(buf, n);
  const int status = ::pclose(pipe);
  return {WIFEXITED(status) ? WEXITSTATUS(status) : -1, out};
}

TEST(Plan, DelcPlanBytesSurviveSchedulerExecutorAndRecompiles) {
  const std::string dir = ::testing::TempDir();
  const std::string program = dir + "/plan_determinism.dlr";
  const std::string profile = dir + "/plan_determinism_profile.json";
  {
    // delc optimizes, so use the recursive program: the fan is
    // all-constant and would fold to a trivial graph.
    std::ofstream out(program);
    out << kEquivalenceProgram;
  }
  ASSERT_TRUE(tools::write_cost_profile_file(profile, fan_profile()));

  const std::string delc = DELIRIUM_DELC_PATH;
  const std::string base = delc + " --plan --profile-in " + profile +
                           " --format json " + program + " 2>/dev/null";
  const std::string hermetic = "env -u DELIRIUM_SCHEDULER -u DELIRIUM_EXECUTOR ";
  auto [ref_status, ref] = run_command(hermetic + base);
  ASSERT_EQ(ref_status, 0);
  ASSERT_NE(ref.find("\"schema\": \"delirium.plan\""), std::string::npos) << ref;

  // Recompile (same invocation), scheduler/worker flags, threaded
  // executor, and the scheduler env knob: none may move a byte.
  const std::string perturbed[] = {
      hermetic + base,
      hermetic + delc + " --plan --profile-in " + profile +
          " --format json --scheduler global_lock --workers 7 " + program +
          " 2>/dev/null",
      hermetic + delc + " --plan --profile-in " + profile +
          " --format json --executor threaded " + program + " 2>/dev/null",
      "env -u DELIRIUM_EXECUTOR DELIRIUM_SCHEDULER=global_lock " + base,
  };
  for (const std::string& cmd : perturbed) {
    auto [status, out] = run_command(cmd);
    EXPECT_EQ(status, 0) << cmd;
    EXPECT_EQ(out, ref) << cmd;
  }
  std::remove(program.c_str());
  std::remove(profile.c_str());
}

TEST(Plan, DelcRejectsPlanWithoutProfile) {
  const std::string program = ::testing::TempDir() + "/plan_noprofile.dlr";
  {
    std::ofstream out(program);
    out << "main() add(1, 2)\n";
  }
  auto [status, out] =
      run_command(std::string(DELIRIUM_DELC_PATH) + " --plan " + program + " 2>&1");
  EXPECT_EQ(status, 2);
  EXPECT_NE(out.find("--plan requires --profile-in"), std::string::npos) << out;
  std::remove(program.c_str());
}

TEST(Plan, DelcProfileRoundTripThroughFiles) {
  // delc --profile-out, then --profile-in of those bytes: loading and
  // re-serializing reproduces the file exactly (write -> load -> write).
  const std::string dir = ::testing::TempDir();
  const std::string program = dir + "/profile_cycle.dlr";
  const std::string profile = dir + "/profile_cycle.json";
  {
    std::ofstream out(program);
    out << kEquivalenceProgram;
  }
  auto [status, out] = run_command("env -u DELIRIUM_EXECUTOR -u DELIRIUM_TRACE " +
                                   std::string(DELIRIUM_DELC_PATH) + " --sim 2 --profile-out " +
                                   profile + " " + program + " 2>&1");
  ASSERT_EQ(status, 0) << out;
  std::ifstream in(profile);
  ASSERT_TRUE(in.good());
  std::ostringstream bytes;
  bytes << in.rdbuf();
  EXPECT_EQ(tools::cost_profile_to_json(tools::load_cost_profile(bytes.str())),
            bytes.str());
  std::remove(program.c_str());
  std::remove(profile.c_str());
}

}  // namespace
}  // namespace delirium
