// Value model unit tests: kinds, conversions, blocks with copy-on-write,
// tuples, closures, and display.
#include <gtest/gtest.h>

#include "src/runtime/value.h"

namespace delirium {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), Value::Kind::kNull);
  EXPECT_FALSE(v.truthy());
}

TEST(Value, IntRoundTrip) {
  const Value v = Value::of(int64_t{-42});
  EXPECT_EQ(v.as_int(), -42);
  EXPECT_EQ(v.as_float(), -42.0);  // widening allowed
  EXPECT_TRUE(v.truthy());
  EXPECT_FALSE(Value::of(int64_t{0}).truthy());
}

TEST(Value, FloatRoundTrip) {
  const Value v = Value::of(2.5);
  EXPECT_DOUBLE_EQ(v.as_float(), 2.5);
  EXPECT_THROW(v.as_int(), RuntimeError);  // no implicit narrowing
  EXPECT_FALSE(Value::of(0.0).truthy());
}

TEST(Value, StringRoundTrip) {
  const Value v = Value::of(std::string("hi"));
  EXPECT_EQ(v.as_string(), "hi");
  EXPECT_TRUE(Value::of(std::string("")).truthy());  // strings always true
}

TEST(Value, TypeErrorsAreDescriptive) {
  try {
    Value::of(int64_t{1}).as_string();
    FAIL();
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("expected a string"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("int"), std::string::npos);
  }
}

TEST(Value, TupleAccess) {
  const Value t = Value::tuple({Value::of(int64_t{1}), Value::of(2.0)});
  EXPECT_EQ(t.kind(), Value::Kind::kTuple);
  EXPECT_EQ(t.as_tuple().elems.size(), 2u);
  EXPECT_EQ(t.as_tuple().elems[0].as_int(), 1);
}

TEST(Value, BlockTypedAccess) {
  Value v = Value::block(std::vector<int>{1, 2, 3});
  EXPECT_EQ(v.block_as<std::vector<int>>().size(), 3u);
  EXPECT_THROW(v.block_as<std::vector<double>>(), RuntimeError);
}

TEST(Value, BlockByteSizeForContainers) {
  Value v = Value::block(std::vector<double>(100));
  EXPECT_GE(v.block_ptr()->byte_size(), 100 * sizeof(double));
}

TEST(Value, CopyOnWriteWhenShared) {
  Value a = Value::block(std::vector<int>{1, 2, 3});
  Value b = a;  // second reference
  bool copied = false;
  a.block_mut<std::vector<int>>(&copied)[0] = 99;
  EXPECT_TRUE(copied);
  EXPECT_EQ(a.block_as<std::vector<int>>()[0], 99);
  EXPECT_EQ(b.block_as<std::vector<int>>()[0], 1);  // b untouched
}

TEST(Value, InPlaceWhenSoleReference) {
  Value a = Value::block(std::vector<int>{1, 2, 3});
  const BlockBase* before = a.block_ptr().get();
  bool copied = false;
  a.block_mut<std::vector<int>>(&copied)[0] = 99;
  EXPECT_FALSE(copied);
  EXPECT_EQ(a.block_ptr().get(), before);  // same storage
}

TEST(Value, CopyOnWriteReleasesAfterDrop) {
  Value a = Value::block(std::vector<int>{5});
  {
    Value b = a;
    (void)b;
  }
  bool copied = false;
  a.block_mut<std::vector<int>>(&copied);
  EXPECT_FALSE(copied);  // sole again
}

TEST(Value, ClosureCapturesMoveWhenUnique) {
  Template tmpl;
  tmpl.name = "t";
  Value c = Value::closure(&tmpl, {Value::of(int64_t{7})});
  std::vector<Value> captures = c.take_closure_captures();
  ASSERT_EQ(captures.size(), 1u);
  EXPECT_EQ(captures[0].as_int(), 7);
  // The (still-referenced) closure is now empty: moved out.
  EXPECT_TRUE(c.as_closure().captures.empty());
}

TEST(Value, ClosureCapturesCopyWhenShared) {
  Template tmpl;
  Value c = Value::closure(&tmpl, {Value::of(int64_t{7})});
  Value d = c;
  std::vector<Value> captures = c.take_closure_captures();
  EXPECT_EQ(captures.size(), 1u);
  EXPECT_EQ(d.as_closure().captures.size(), 1u);  // copy, not move
}

TEST(Value, DeepEqualCoversKinds) {
  EXPECT_TRUE(deep_equal(Value::null(), Value::null()));
  EXPECT_TRUE(deep_equal(Value::of(int64_t{3}), Value::of(3.0)));  // numeric cross
  EXPECT_FALSE(deep_equal(Value::of(int64_t{3}), Value::of(std::string("3"))));
  EXPECT_TRUE(deep_equal(Value::tuple({Value::of(int64_t{1})}),
                         Value::tuple({Value::of(int64_t{1})})));
  EXPECT_FALSE(deep_equal(Value::tuple({Value::of(int64_t{1})}),
                          Value::tuple({Value::of(int64_t{2})})));
  Value block = Value::block(std::vector<int>{1});
  EXPECT_TRUE(deep_equal(block, block));
  EXPECT_FALSE(deep_equal(block, Value::block(std::vector<int>{1})));  // identity
}

TEST(Value, DisplayStrings) {
  EXPECT_EQ(Value::null().to_display_string(), "NULL");
  EXPECT_EQ(Value::of(int64_t{42}).to_display_string(), "42");
  EXPECT_EQ(Value::of(std::string("x")).to_display_string(), "x");
  EXPECT_EQ(Value::tuple({Value::of(int64_t{1}), Value::null()}).to_display_string(),
            "<1, NULL>");
  EXPECT_NE(Value::block(std::vector<int>{1}).to_display_string().find("block"),
            std::string::npos);
}

TEST(Value, FromConstMirrorsConstValues) {
  EXPECT_TRUE(Value::from_const(ConstValue{std::monostate{}}).is_null());
  EXPECT_EQ(Value::from_const(ConstValue{int64_t{5}}).as_int(), 5);
  EXPECT_DOUBLE_EQ(Value::from_const(ConstValue{2.5}).as_float(), 2.5);
  EXPECT_EQ(Value::from_const(ConstValue{std::string("s")}).as_string(), "s");
}

struct CustomSized {
  int x = 0;
};
size_t delirium_block_size(const CustomSized&) { return 12345; }

TEST(Value, BlockSizeCustomizationHook) {
  Value v = Value::block(CustomSized{});
  EXPECT_EQ(v.block_ptr()->byte_size(), 12345u);
}

}  // namespace
}  // namespace delirium
