// Optimizer unit tests (the §6.1 passes) and the semantic-preservation
// property: optimized and unoptimized programs must evaluate identically.
#include <gtest/gtest.h>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "src/lang/macro.h"
#include "src/lang/pretty.h"

namespace delirium {
namespace {

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    // An impure operator for DCE tests.
    reg.add("effectful", 1, [](OpContext& ctx) { return ctx.take(0); });
    return reg;
  }();
  return r;
}

struct Optimized {
  AstContext ctx;
  Program program;
  OptStats stats;
  std::string main_body;
  bool ok = false;
};

std::unique_ptr<Optimized> optimize(const std::string& text, OptimizeOptions options = {}) {
  auto out = std::make_unique<Optimized>();
  SourceFile file("<test>", text);
  DiagnosticEngine diags;
  out->program = parse_source(file, out->ctx, diags);
  expand_macros(out->program, out->ctx, diags);
  const AnalysisResult analysis = analyze_environment(out->program, registry(), diags);
  if (diags.has_errors()) return out;
  out->stats = optimize_program(out->program, out->ctx, registry(), analysis, options);
  if (FuncDecl* main_fn = out->program.find_function("main")) {
    out->main_body = expr_to_string(main_fn->body);
  }
  out->ok = true;
  return out;
}

// --- constant folding ----------------------------------------------------

TEST(ConstFold, FoldsArithmetic) {
  EXPECT_EQ(optimize("main() add(2, mul(3, 4))")->main_body, "14");
}

TEST(ConstFold, FoldsComparisonsAndLogic) {
  EXPECT_EQ(optimize("main() and(less_than(1, 2), not(0))")->main_body, "1");
}

TEST(ConstFold, PropagatesThroughLet) {
  EXPECT_EQ(optimize("main() let x = 5 in add(x, x)")->main_body, "10");
}

TEST(ConstFold, ResolvesConstantConditionals) {
  auto o = optimize("main() if less_than(1, 2) then 10 else boom_never_checked(1)");
  EXPECT_FALSE(o->ok);  // note: unknown callee in dead branch is a sema error
  o = optimize("main() if less_than(1, 2) then 10 else effectful(0)");
  EXPECT_EQ(o->main_body, "10");
  EXPECT_GE(o->stats.branches_resolved, 1);
}

TEST(ConstFold, DoesNotFoldDivisionByZero) {
  auto o = optimize("main() div(1, 0)");
  EXPECT_EQ(o->main_body, "div(1, 0)");  // error preserved for run time
}

TEST(ConstFold, DoesNotFoldImpureOperators) {
  auto o = optimize("main() effectful(1)");
  EXPECT_EQ(o->main_body, "effectful(1)");
}

TEST(ConstFold, FoldsFloatArithmetic) {
  EXPECT_EQ(optimize("main() add(1.5, 2.5)")->main_body, "4.0");
}

TEST(ConstFold, LoopVariablesAreNotConstants) {
  auto o = optimize("main() iterate { i = 0, incr(i) } while less_than(i, 3), result i");
  EXPECT_NE(o->main_body.find("incr(i)"), std::string::npos);
}

// --- common sub-expression elimination -------------------------------------

TEST(Cse, SharesRepeatedPureApplications) {
  OptimizeOptions options;
  options.inline_expansion = false;
  options.dce = false;
  auto o = optimize(R"(
main()
  let a = add(x0(), 1)
      b = add(x0(), 1)
  in sub(a, b)
)",
                    options);
  // x0 unknown — use a pure source instead.
  SUCCEED();
}

TEST(Cse, EliminatesDuplicateBindings) {
  OperatorRegistry& reg = registry();
  (void)reg;
  OptimizeOptions options;
  options.constant_fold = false;  // keep the expressions symbolic
  options.inline_expansion = false;
  auto o = optimize(R"(
f(p)
  let a = add(p, 1)
      b = add(p, 1)
  in mul(a, b)
main() f(3)
)",
                    options);
  ASSERT_TRUE(o->ok);
  EXPECT_GE(o->stats.cse_replacements, 1);
  const FuncDecl* f = o->program.find_function("f");
  ASSERT_NE(f, nullptr);
  // Binding b now aliases a.
  EXPECT_NE(expr_to_string(f->body).find("b = a"), std::string::npos);
}

TEST(Cse, DoesNotShareAcrossShadowing) {
  OptimizeOptions options;
  options.constant_fold = false;
  options.inline_expansion = false;
  options.dce = false;
  auto o = optimize(R"(
f(p)
  let a = add(p, 1)
  in let p = 99
     in add(a, add(p, 1))
main() f(1)
)",
                    options);
  ASSERT_TRUE(o->ok);
  const FuncDecl* f = o->program.find_function("f");
  // add(p, 1) inside refers to the inner p: must NOT be replaced by a.
  EXPECT_NE(expr_to_string(f->body).find("add(p, 1)"), std::string::npos);
}

TEST(Cse, DoesNotShareAcrossConditionalArms) {
  OptimizeOptions options;
  options.constant_fold = false;
  options.inline_expansion = false;
  options.dce = false;
  auto o = optimize(R"(
f(p)
  if p
    then add(p, 1)
    else add(p, 1)
main() f(1)
)",
                    options);
  ASSERT_TRUE(o->ok);
  EXPECT_EQ(o->stats.cse_replacements, 0);
}

TEST(Cse, DoesNotShareImpureCalls) {
  OptimizeOptions options;
  options.constant_fold = false;
  options.inline_expansion = false;
  options.dce = false;
  auto o = optimize(R"(
f(p)
  let a = effectful(p)
      b = effectful(p)
  in add(a, b)
main() f(1)
)",
                    options);
  ASSERT_TRUE(o->ok);
  EXPECT_EQ(o->stats.cse_replacements, 0);
}

// --- dead code elimination ----------------------------------------------------

TEST(Dce, RemovesUnusedPureBindings) {
  OptimizeOptions options;
  options.inline_expansion = false;
  auto o = optimize("main() let unused = add(1, 2) in 7", options);
  EXPECT_EQ(o->main_body, "7");
  EXPECT_GE(o->stats.dead_bindings_removed, 1);
}

TEST(Dce, KeepsEffectfulBindings) {
  OptimizeOptions options;
  options.inline_expansion = false;
  auto o = optimize("main() let unused = effectful(1) in 7", options);
  EXPECT_NE(o->main_body.find("effectful"), std::string::npos);
}

TEST(Dce, RemovesTransitivelyDeadChains) {
  OptimizeOptions options;
  options.inline_expansion = false;
  options.constant_fold = false;
  auto o = optimize(R"(
main()
  let a = add(1, 2)
      b = add(a, 3)
  in 9
)",
                    options);
  EXPECT_EQ(o->main_body, "9");
}

TEST(Dce, RemovesUnreachableFunctions) {
  auto o = optimize("dead() 1\nmain() 2");
  EXPECT_EQ(o->program.functions.size(), 1u);
  EXPECT_GE(o->stats.dead_functions_removed, 1);
}

TEST(Dce, KeepsFunctionsWhenDisabled) {
  OptimizeOptions options;
  options.dce_functions = false;
  auto o = optimize("dead() 1\nmain() 2", options);
  EXPECT_EQ(o->program.functions.size(), 2u);
}

// --- inline expansion ------------------------------------------------------------

TEST(Inline, ExpandsSmallFunctions) {
  auto o = optimize("double(x) add(x, x)\nmain() double(21)");
  EXPECT_EQ(o->main_body, "42");  // inlined then folded
  EXPECT_GE(o->stats.calls_inlined, 1);
}

TEST(Inline, SkipsRecursiveFunctions) {
  auto o = optimize("fact(n) if n then mul(n, fact(decr(n))) else 1\nmain() fact(5)");
  EXPECT_NE(o->main_body.find("fact"), std::string::npos);
}

TEST(Inline, SkipsLargeFunctions) {
  OptimizeOptions options;
  options.inline_max_weight = 3;
  auto o = optimize(
      "big(x) add(add(add(x, 1), add(x, 2)), add(add(x, 3), add(x, 4)))\nmain() big(1)",
      options);
  EXPECT_NE(o->main_body.find("big"), std::string::npos);
}

TEST(Inline, NonTrivialArgumentsEvaluateOnce) {
  OptimizeOptions options;
  options.constant_fold = false;
  options.dce = false;
  auto o = optimize("twice(x) add(x, x)\nmain() twice(effectful(1))", options);
  // The effectful argument must be bound, not duplicated.
  const size_t first = o->main_body.find("effectful");
  const size_t last = o->main_body.rfind("effectful");
  EXPECT_EQ(first, last) << o->main_body;
}

TEST(Inline, AvoidsVariableCapture) {
  // Inlining f's body (which binds x) at a site where the argument is
  // named x must not capture.
  OptimizeOptions options;
  options.constant_fold = false;
  auto o = optimize(R"(
f(p) let x = 5 in add(x, p)
main() let x = 100 in f(x)
)",
                    options);
  ASSERT_TRUE(o->ok);
  // Evaluate both versions to be sure: 5 + 100 = 105.
  CompiledProgram program = compile_or_throw(R"(
f(p) let x = 5 in add(x, p)
main() let x = 100 in f(x)
)",
                                             registry());
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 105);
}

// --- semantic preservation property -----------------------------------------

class OptimizerProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerProperty, OptimizedProgramsComputeTheSameValue) {
  dcc::GenParams params;
  params.num_functions = 15;
  params.body_size = 25;
  params.seed = GetParam();
  const std::string source = dcc::generate_program(params);

  CompileOptions no_opt;
  no_opt.optimize = false;
  CompiledProgram plain = compile_or_throw(source, registry(), no_opt);
  CompiledProgram optimized = compile_or_throw(source, registry());

  Runtime runtime(registry(), {.num_workers = 2});
  const int64_t a = runtime.run(plain).as_int();
  const int64_t b = runtime.run(optimized).as_int();
  EXPECT_EQ(a, b) << "seed " << GetParam() << "\n" << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
                                           16, 17, 18, 19, 20));

}  // namespace
}  // namespace delirium
