// Baseline coordination models: each must compute the same answers as
// the sequential references — they exist so the benches can compare
// Delirium against the models of §8 quantitatively.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/baselines/baseline_apps.h"
#include "src/baselines/replicated_worker.h"
#include "src/baselines/tuple_space.h"

namespace delirium::baselines {
namespace {

TEST(ParallelFor, CoversEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h = 0;
  parallel_for(100, 4, [&](int t) { hits[t].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ForkJoinPool, ReusableAcrossPhases) {
  ForkJoinPool pool(3);
  std::atomic<int> total{0};
  for (int phase = 0; phase < 10; ++phase) {
    pool.fork(8, [&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 80);
}

TEST(ForkJoinPool, ForkIsABarrier) {
  ForkJoinPool pool(4);
  std::atomic<int> done{0};
  pool.fork(16, [&](int) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 16);  // all complete before fork() returns
}

TEST(ReplicatedWorker, RunsSeedTasks) {
  ReplicatedWorkerPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&count](ReplicatedWorkerPool&) { count.fetch_add(1); });
  }
  pool.run();
  EXPECT_EQ(count.load(), 20);
}

TEST(ReplicatedWorker, TasksCanSpawnTasks) {
  ReplicatedWorkerPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(ReplicatedWorkerPool&, int)> spawn =
      [&](ReplicatedWorkerPool& p, int depth) {
        if (depth == 0) {
          leaves.fetch_add(1);
          return;
        }
        for (int i = 0; i < 2; ++i) {
          p.submit([&spawn, depth](ReplicatedWorkerPool& inner) { spawn(inner, depth - 1); });
        }
      };
  pool.submit([&spawn](ReplicatedWorkerPool& p) { spawn(p, 6); });
  pool.run();
  EXPECT_EQ(leaves.load(), 64);
}

TEST(TupleSpace, OutInRoundTrip) {
  TupleSpace space;
  space.out(Tuple{"point", {Field{int64_t{3}}, Field{int64_t{4}}}});
  Pattern p{"point", {std::nullopt, std::nullopt}};
  Tuple t = space.in(p);
  EXPECT_EQ(std::get<int64_t>(t.fields[0]), 3);
  EXPECT_EQ(space.size(), 0u);
}

TEST(TupleSpace, AssociativeMatching) {
  TupleSpace space;
  space.out(Tuple{"job", {Field{int64_t{1}}, Field{std::string("a")}}});
  space.out(Tuple{"job", {Field{int64_t{2}}, Field{std::string("b")}}});
  Pattern want_two{"job", {Field{int64_t{2}}, std::nullopt}};
  Tuple t = space.in(want_two);
  EXPECT_EQ(std::get<std::string>(t.fields[1]), "b");
  EXPECT_EQ(space.size(), 1u);
}

TEST(TupleSpace, InpReturnsNulloptWhenEmpty) {
  TupleSpace space;
  Pattern p{"missing", {}};
  EXPECT_FALSE(space.inp(p).has_value());
}

TEST(TupleSpace, RdDoesNotRemove) {
  TupleSpace space;
  space.out(Tuple{"x", {Field{int64_t{7}}}});
  Pattern p{"x", {std::nullopt}};
  EXPECT_EQ(std::get<int64_t>(space.rd(p).fields[0]), 7);
  EXPECT_EQ(space.size(), 1u);
}

TEST(TupleSpace, BlockingInWakesOnOut) {
  TupleSpace space;
  Pattern p{"late", {std::nullopt}};
  std::thread producer([&space] {
    space.out(Tuple{"late", {Field{int64_t{42}}}});
  });
  Tuple t = space.in(p);
  producer.join();
  EXPECT_EQ(std::get<int64_t>(t.fields[0]), 42);
}

TEST(BaselineApps, ForkJoinRetinaMatchesSequential) {
  retina::RetinaParams p;
  p.width = 64;
  p.height = 64;
  p.num_targets = 8;
  p.num_iter = 2;
  ForkJoinPool pool(4);
  const auto parallel = retina_forkjoin_run(p, pool);
  const auto sequential = retina::sequential_run(p);
  EXPECT_EQ(retina::checksum(parallel), retina::checksum(sequential));
}

TEST(BaselineApps, ReplicatedWorkerQueensCounts) {
  EXPECT_EQ(queens_replicated_worker(6, 4), 4);
  EXPECT_EQ(queens_replicated_worker(7, 2), 40);
}

TEST(BaselineApps, TupleSpaceQueensCounts) {
  EXPECT_EQ(queens_tuple_space(6, 4), 4);
  EXPECT_EQ(queens_tuple_space(7, 3), 40);
}

}  // namespace
}  // namespace delirium::baselines
