// Shared helpers for the test suite: compile-and-run conveniences and
// the cross-executor equivalence fixture.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <exception>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "src/tools/trace.h"

namespace delirium::testing {

/// Saves the named environment variables and unsets them, restoring the
/// original values on destruction. Tests that exercise the runtime's env
/// knobs (DELIRIUM_INJECT_FAULTS, DELIRIUM_RETRIES, ...) use this so they
/// stay hermetic under CI jobs that export those variables suite-wide.
class ScopedEnv {
 public:
  explicit ScopedEnv(std::initializer_list<const char*> names) {
    for (const char* name : names) {
      const char* old = std::getenv(name);
      saved_.emplace_back(name, old != nullptr ? std::optional<std::string>(old)
                                               : std::nullopt);
      ::unsetenv(name);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;
  ~ScopedEnv() {
    for (const auto& [name, old] : saved_) {
      if (old.has_value()) {
        ::setenv(name.c_str(), old->c_str(), 1);
      } else {
        ::unsetenv(name.c_str());
      }
    }
  }

  void set(const char* name, const char* value) { ::setenv(name, value, 1); }

 private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

/// Registry with builtins pre-registered.
inline std::shared_ptr<OperatorRegistry> builtin_registry() {
  auto reg = std::make_shared<OperatorRegistry>();
  register_builtin_operators(*reg);
  return reg;
}

/// Compile `source` and run `main` with `workers` workers; returns the
/// result value. Throws on compile or runtime failure.
inline Value compile_and_run(const std::string& source, const OperatorRegistry& registry,
                             int workers = 2, const CompileOptions& copts = {},
                             RuntimeConfig rconfig = {}) {
  CompiledProgram program = compile_or_throw(source, registry, copts);
  rconfig.num_workers = workers;
  Runtime runtime(registry, rconfig);
  return runtime.run(program);
}

/// Compile and run with builtins only.
inline Value eval(const std::string& source, int workers = 2) {
  auto reg = builtin_registry();
  return compile_and_run(source, *reg, workers);
}

inline int64_t eval_int(const std::string& source, int workers = 2) {
  return eval(source, workers).as_int();
}

// ---------------------------------------------------------------------------
// ExecutorFixture: cross-executor equivalence matrix
// ---------------------------------------------------------------------------

/// One executor in the equivalence matrix.
struct ExecutorSpec {
  enum class Kind { kThreaded, kSim };
  Kind kind = Kind::kThreaded;
  int workers = 1;  // worker threads / virtual processors
  SchedulerKind scheduler = SchedulerKind::kGlobalLock;  // threaded only
  /// Overrides the fixture-wide ExecConfig::affinity when set.
  std::optional<AffinityMode> affinity;

  std::string name() const {
    if (kind == Kind::kSim) return "sim_procs" + std::to_string(workers);
    std::string n = scheduler == SchedulerKind::kWorkStealing ? "ws" : "gl";
    n += std::to_string(workers);
    if (affinity.has_value()) {
      switch (*affinity) {
        case AffinityMode::kNone: break;
        case AffinityMode::kOperator: n += "_opaff"; break;
        case AffinityMode::kData: n += "_dataff"; break;
      }
    }
    return n;
  }
};

/// What one executor produced: a value or an error, plus the
/// executor-invariant slice of the run (deterministic counters and the
/// deterministic trace-event multiset of docs/OBSERVABILITY.md).
struct ExecutorOutcome {
  Value value;
  std::exception_ptr error;  // set iff the run threw
  std::string error_text;
  RunStats stats;
  std::vector<std::string> trace;  // tools::deterministic_event_multiset
  /// Events lost to ring overwrite (flight-recorder truncation). Which
  /// events survive a full ring is schedule-dependent, so multisets are
  /// compared only between runs that kept everything.
  uint64_t trace_overwritten = 0;

  bool faulted() const { return error != nullptr; }
  /// The value, or rethrow what the executor threw.
  const Value& value_or_rethrow() const {
    if (error) std::rethrow_exception(error);
    return value;
  }
};

/// Runs any program across the executor matrix — by default
/// {threaded × {global-lock, work-stealing} × {1, 2, 8} workers,
/// sim × {1, 4} procs} — and asserts the parts of the outcome that are
/// functions of the coordination graph alone: deep-equal values,
/// byte-identical error reports, identical graph-determined counters,
/// and equal deterministic trace multisets. Schedule-dependent numbers
/// (peak liveness, CoW hits, steals/parks, pool recycling, purge counts
/// on cancelled runs) are deliberately not compared.
///
/// Shared knobs set on config() apply to every executor, so a test can
/// sweep e.g. affinity or retry policy across the whole matrix.
class ExecutorFixture {
 public:
  ExecutorFixture() : owned_(builtin_registry()), registry_(owned_.get()) {}
  /// Uses a caller-owned registry (custom operators, fault plans). The
  /// registry must outlive the fixture.
  explicit ExecutorFixture(const OperatorRegistry& registry) : registry_(&registry) {}

  ExecConfig& config() { return shared_; }
  CompileOptions& compile_options() { return copts_; }
  std::vector<ExecutorSpec>& matrix() { return matrix_; }

  static std::vector<ExecutorSpec> default_matrix() {
    std::vector<ExecutorSpec> specs;
    for (const SchedulerKind scheduler :
         {SchedulerKind::kGlobalLock, SchedulerKind::kWorkStealing}) {
      for (const int workers : {1, 2, 8}) {
        specs.push_back({ExecutorSpec::Kind::kThreaded, workers, scheduler, {}});
      }
    }
    specs.push_back({ExecutorSpec::Kind::kSim, 1});
    specs.push_back({ExecutorSpec::Kind::kSim, 4});
    return specs;
  }

  /// Run the program on one executor. Tracing is forced on so the trace
  /// multiset is always comparable.
  ExecutorOutcome run_on(const CompiledProgram& program, const ExecutorSpec& spec) const {
    ExecutorOutcome out;
    if (spec.kind == ExecutorSpec::Kind::kSim) {
      SimConfig config;
      static_cast<ExecConfig&>(config) = shared_;
      config.num_procs = spec.workers;
      if (spec.affinity.has_value()) config.affinity = *spec.affinity;
      config.enable_tracing = true;
      config.trace_capacity = kTraceCapacity;
      SimRuntime sim(*registry_, config);
      try {
        SimResult result = sim.run(program);
        out.value = std::move(result.result);
      } catch (const std::exception& e) {
        out.error = std::current_exception();
        out.error_text = e.what();
      }
      out.stats = sim.last_stats();
      out.trace = tools::deterministic_event_multiset(sim.trace_events(), *registry_);
    } else {
      RuntimeConfig config;
      static_cast<ExecConfig&>(config) = shared_;
      config.num_workers = spec.workers;
      config.scheduler = spec.scheduler;
      if (spec.affinity.has_value()) config.affinity = *spec.affinity;
      config.enable_tracing = true;
      config.trace_capacity = kTraceCapacity;
      Runtime runtime(*registry_, config);
      try {
        out.value = runtime.run(program);
      } catch (const std::exception& e) {
        out.error = std::current_exception();
        out.error_text = e.what();
      }
      out.stats = runtime.last_stats();
      out.trace = tools::deterministic_event_multiset(runtime.trace_events(), *registry_);
      out.trace_overwritten = runtime.trace_events_overwritten();
    }
    return out;
  }

  /// Run on every executor in the matrix, assert equivalence, and return
  /// the first (reference) executor's outcome.
  ExecutorOutcome expect_equivalent(const CompiledProgram& program) const {
    const ExecutorOutcome ref = run_on(program, matrix_.front());
    for (size_t i = 1; i < matrix_.size(); ++i) {
      const ExecutorSpec& spec = matrix_[i];
      const ExecutorOutcome got = run_on(program, spec);
      const std::string where =
          "executor " + spec.name() + " vs " + matrix_.front().name();
      EXPECT_EQ(got.faulted(), ref.faulted()) << where;
      if (ref.faulted() || got.faulted()) {
        // Error reports are byte-identical across executors, except that
        // the simulator labels its deadlock diagnostics "simulated".
        EXPECT_EQ(strip_simulated(got.error_text), strip_simulated(ref.error_text))
            << where;
        EXPECT_EQ(got.stats.faults_raised, ref.stats.faults_raised) << where;
        // Everything else (nodes executed, purge counts, traces) is
        // schedule-dependent on a cancelled run — not compared.
        continue;
      }
      EXPECT_TRUE(deep_equal(got.value, ref.value)) << where;
      EXPECT_EQ(got.stats.nodes_executed, ref.stats.nodes_executed) << where;
      EXPECT_EQ(got.stats.operator_invocations, ref.stats.operator_invocations) << where;
      EXPECT_EQ(got.stats.activations_created, ref.stats.activations_created) << where;
      EXPECT_EQ(got.stats.faults_raised, ref.stats.faults_raised) << where;
      EXPECT_EQ(got.stats.faults_injected, ref.stats.faults_injected) << where;
      EXPECT_EQ(got.stats.retries, ref.stats.retries) << where;
      EXPECT_EQ(got.stats.retries_exhausted, ref.stats.retries_exhausted) << where;
      if (got.trace_overwritten == 0 && ref.trace_overwritten == 0) {
        EXPECT_EQ(got.trace, ref.trace) << where;
      }
    }
    return ref;
  }

  /// Compile `source` (with the fixture's compile options), then
  /// expect_equivalent on the result.
  ExecutorOutcome expect_equivalent(const std::string& source) const {
    return expect_equivalent(compile_or_throw(source, *registry_, copts_));
  }

 private:
  /// Per-worker ring capacity for the matrix runs: roomy enough that the
  /// test workloads keep their whole event stream (truncated rings are
  /// exempt from the multiset comparison), small enough that an
  /// 8-worker runtime's rings stay cheap to allocate per run.
  static constexpr size_t kTraceCapacity = size_t{1} << 18;

  static std::string strip_simulated(const std::string& text) {
    constexpr const char* kPrefix = "simulated ";
    return text.rfind(kPrefix, 0) == 0 ? text.substr(std::string(kPrefix).size()) : text;
  }

  std::shared_ptr<OperatorRegistry> owned_;  // only for the default ctor
  const OperatorRegistry* registry_;
  ExecConfig shared_;
  CompileOptions copts_;
  std::vector<ExecutorSpec> matrix_ = default_matrix();
};

/// Compile `source` with builtins only and run it through the whole
/// ExecutorFixture matrix; returns the reference value or rethrows the
/// reference executor's error. The one-liner for core-language tests.
inline Value eval_everywhere(const std::string& source) {
  ExecutorFixture fixture;
  return fixture.expect_equivalent(source).value_or_rethrow();
}

inline int64_t eval_int_everywhere(const std::string& source) {
  return eval_everywhere(source).as_int();
}

}  // namespace delirium::testing
