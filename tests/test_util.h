// Shared helpers for the test suite: compile-and-run conveniences.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/delirium.h"

namespace delirium::testing {

/// Saves the named environment variables and unsets them, restoring the
/// original values on destruction. Tests that exercise the runtime's env
/// knobs (DELIRIUM_INJECT_FAULTS, DELIRIUM_RETRIES, ...) use this so they
/// stay hermetic under CI jobs that export those variables suite-wide.
class ScopedEnv {
 public:
  explicit ScopedEnv(std::initializer_list<const char*> names) {
    for (const char* name : names) {
      const char* old = std::getenv(name);
      saved_.emplace_back(name, old != nullptr ? std::optional<std::string>(old)
                                               : std::nullopt);
      ::unsetenv(name);
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;
  ~ScopedEnv() {
    for (const auto& [name, old] : saved_) {
      if (old.has_value()) {
        ::setenv(name.c_str(), old->c_str(), 1);
      } else {
        ::unsetenv(name.c_str());
      }
    }
  }

  void set(const char* name, const char* value) { ::setenv(name, value, 1); }

 private:
  std::vector<std::pair<std::string, std::optional<std::string>>> saved_;
};

/// Registry with builtins pre-registered.
inline std::shared_ptr<OperatorRegistry> builtin_registry() {
  auto reg = std::make_shared<OperatorRegistry>();
  register_builtin_operators(*reg);
  return reg;
}

/// Compile `source` and run `main` with `workers` workers; returns the
/// result value. Throws on compile or runtime failure.
inline Value compile_and_run(const std::string& source, const OperatorRegistry& registry,
                             int workers = 2, const CompileOptions& copts = {},
                             RuntimeConfig rconfig = {}) {
  CompiledProgram program = compile_or_throw(source, registry, copts);
  rconfig.num_workers = workers;
  Runtime runtime(registry, rconfig);
  return runtime.run(program);
}

/// Compile and run with builtins only.
inline Value eval(const std::string& source, int workers = 2) {
  auto reg = builtin_registry();
  return compile_and_run(source, *reg, workers);
}

inline int64_t eval_int(const std::string& source, int workers = 2) {
  return eval(source, workers).as_int();
}

}  // namespace delirium::testing
