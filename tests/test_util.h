// Shared helpers for the test suite: compile-and-run conveniences.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/delirium.h"

namespace delirium::testing {

/// Registry with builtins pre-registered.
inline std::shared_ptr<OperatorRegistry> builtin_registry() {
  auto reg = std::make_shared<OperatorRegistry>();
  register_builtin_operators(*reg);
  return reg;
}

/// Compile `source` and run `main` with `workers` workers; returns the
/// result value. Throws on compile or runtime failure.
inline Value compile_and_run(const std::string& source, const OperatorRegistry& registry,
                             int workers = 2, const CompileOptions& copts = {},
                             RuntimeConfig rconfig = {}) {
  CompiledProgram program = compile_or_throw(source, registry, copts);
  rconfig.num_workers = workers;
  Runtime runtime(registry, rconfig);
  return runtime.run(program);
}

/// Compile and run with builtins only.
inline Value eval(const std::string& source, int workers = 2) {
  auto reg = builtin_registry();
  return compile_and_run(source, *reg, workers);
}

inline int64_t eval_int(const std::string& source, int workers = 2) {
  return eval(source, workers).as_int();
}

}  // namespace delirium::testing
