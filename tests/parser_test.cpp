// Parser unit tests: the six constructs, error reporting, and the
// pretty-printer round-trip property (parse . print == identity).
#include <gtest/gtest.h>

#include "src/lang/parser.h"
#include "src/lang/pretty.h"

namespace delirium {
namespace {

struct Parsed {
  AstContext ctx;
  Program program;
  DiagnosticEngine diags;
  std::string summary;
};

std::unique_ptr<Parsed> parse(const std::string& text) {
  auto out = std::make_unique<Parsed>();
  SourceFile file("<test>", text);
  out->program = parse_source(file, out->ctx, out->diags);
  out->summary = out->diags.summary(file);
  return out;
}

TEST(Parser, SimpleFunction) {
  auto p = parse("main() 42");
  ASSERT_FALSE(p->diags.has_errors()) << p->summary;
  ASSERT_EQ(p->program.functions.size(), 1u);
  EXPECT_EQ(p->program.functions[0]->name, "main");
  EXPECT_TRUE(p->program.functions[0]->params.empty());
  EXPECT_EQ(p->program.functions[0]->body->kind, ExprKind::kIntLit);
}

TEST(Parser, FunctionWithParams) {
  auto p = parse("f(a, b, c) a");
  ASSERT_FALSE(p->diags.has_errors());
  EXPECT_EQ(p->program.functions[0]->params,
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Parser, ApplicationNesting) {
  auto p = parse("main() f(g(1), h(2, 3))");
  ASSERT_FALSE(p->diags.has_errors());
  const Expr* body = p->program.functions[0]->body;
  ASSERT_EQ(body->kind, ExprKind::kApply);
  EXPECT_EQ(body->callee->str_value, "f");
  ASSERT_EQ(body->args.size(), 2u);
  EXPECT_EQ(body->args[0]->callee->str_value, "g");
}

TEST(Parser, ChainedApplication) {
  // f(x)(y): calling the closure f returns.
  auto p = parse("main() f(1)(2)");
  ASSERT_FALSE(p->diags.has_errors());
  const Expr* body = p->program.functions[0]->body;
  ASSERT_EQ(body->kind, ExprKind::kApply);
  EXPECT_EQ(body->callee->kind, ExprKind::kApply);
}

TEST(Parser, LetWithAllBindingKinds) {
  auto p = parse(R"(
main()
  let x = 1
      <a, b> = pair()
      helper(v) add(v, x)
  in helper(a)
)");
  ASSERT_FALSE(p->diags.has_errors()) << p->summary;
  const Expr* body = p->program.functions[0]->body;
  ASSERT_EQ(body->kind, ExprKind::kLet);
  ASSERT_EQ(body->bindings.size(), 3u);
  EXPECT_EQ(body->bindings[0].kind, Binding::Kind::kValue);
  EXPECT_EQ(body->bindings[1].kind, Binding::Kind::kDecompose);
  EXPECT_EQ(body->bindings[1].names, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(body->bindings[2].kind, Binding::Kind::kFunction);
  EXPECT_EQ(body->bindings[2].params, (std::vector<std::string>{"v"}));
}

TEST(Parser, ConditionalStructure) {
  auto p = parse("main() if c(1) then 2 else 3");
  ASSERT_FALSE(p->diags.has_errors());
  const Expr* body = p->program.functions[0]->body;
  ASSERT_EQ(body->kind, ExprKind::kIf);
  EXPECT_EQ(body->cond->kind, ExprKind::kApply);
  EXPECT_EQ(body->then_branch->int_value, 2);
  EXPECT_EQ(body->else_branch->int_value, 3);
}

TEST(Parser, IterateStructure) {
  auto p = parse(R"(
main()
  iterate {
    i = 0, incr(i)
    acc = 1, add(acc, i)
  } while is_not_equal(i, 10), result acc
)");
  ASSERT_FALSE(p->diags.has_errors()) << p->summary;
  const Expr* body = p->program.functions[0]->body;
  ASSERT_EQ(body->kind, ExprKind::kIterate);
  ASSERT_EQ(body->loop_vars.size(), 2u);
  EXPECT_EQ(body->loop_vars[0].name, "i");
  EXPECT_EQ(body->loop_vars[1].name, "acc");
  EXPECT_EQ(body->result_name, "acc");
}

TEST(Parser, IterateCommaBeforeResultIsOptional) {
  EXPECT_FALSE(parse("main() iterate { i = 0, incr(i) } while i result i")->diags.has_errors());
  EXPECT_FALSE(
      parse("main() iterate { i = 0, incr(i) } while i, result i")->diags.has_errors());
}

TEST(Parser, TupleExpression) {
  auto p = parse("main() <1, 2.5, \"x\", NULL>");
  ASSERT_FALSE(p->diags.has_errors());
  const Expr* body = p->program.functions[0]->body;
  ASSERT_EQ(body->kind, ExprKind::kTuple);
  EXPECT_EQ(body->args.size(), 4u);
}

TEST(Parser, DefineDecls) {
  auto p = parse(R"(
define N = 10
define TWICE(x) = add(x, x)
main() TWICE(N)
)");
  ASSERT_FALSE(p->diags.has_errors());
  ASSERT_EQ(p->program.macros.size(), 2u);
  EXPECT_TRUE(p->program.macros[0]->is_macro);
  EXPECT_EQ(p->program.macros[1]->params.size(), 1u);
}

TEST(Parser, MultipleTopLevelFunctions) {
  auto p = parse("f() 1\ng() 2\nh() 3");
  ASSERT_FALSE(p->diags.has_errors());
  EXPECT_EQ(p->program.functions.size(), 3u);
}

TEST(Parser, ErrorMissingParen) {
  auto p = parse("main( 42");
  EXPECT_TRUE(p->diags.has_errors());
}

TEST(Parser, ErrorMissingIn) {
  auto p = parse("main() let x = 1 x");
  EXPECT_TRUE(p->diags.has_errors());
}

TEST(Parser, ErrorIterateWithoutLoopVars) {
  auto p = parse("main() iterate { } while 0, result x");
  EXPECT_TRUE(p->diags.has_errors());
}

TEST(Parser, ErrorGarbageAtTopLevelRecovers) {
  auto p = parse(", , main() 1");
  EXPECT_TRUE(p->diags.has_errors());
  // The parser must still find main.
  EXPECT_EQ(p->program.functions.size(), 1u);
}

TEST(Parser, ParenthesizedExpression) {
  auto p = parse("main() (42)");
  ASSERT_FALSE(p->diags.has_errors());
  EXPECT_EQ(p->program.functions[0]->body->kind, ExprKind::kIntLit);
}

// --- pretty-printer round trip -------------------------------------------

class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, PrintThenParseIsIdentity) {
  auto first = parse(GetParam());
  ASSERT_FALSE(first->diags.has_errors()) << first->summary;
  const std::string printed = program_to_string(first->program);
  auto second = parse(printed);
  ASSERT_FALSE(second->diags.has_errors())
      << "printed form failed to parse:\n" << printed << "\n" << second->summary;
  ASSERT_EQ(first->program.functions.size(), second->program.functions.size());
  for (size_t i = 0; i < first->program.functions.size(); ++i) {
    EXPECT_TRUE(
        expr_equal(first->program.functions[i]->body, second->program.functions[i]->body))
        << "function " << first->program.functions[i]->name << " did not round-trip:\n"
        << printed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTrip,
    ::testing::Values(
        "main() 42", "main() -3.5", "main() \"str\\n\"", "main() NULL",
        "main() f(1)(2)(3)",
        "main() let x = 1 in x",
        "main() let <a, b, c> = t() in b",
        "main() let f(x, y) add(x, y) in f(1, 2)",
        "main() if a() then <1, 2> else NULL",
        "main() iterate { i = 0, incr(i) } while less_than(i, 3), result i",
        R"(do_it(board, queen)
             let h1 = try(board, queen, 1)
                 h2 = try(board, queen, 2)
             in merge(h1, h2)
           main() do_it(empty(), 1)
           try(b, q, l) if valid(b) then b else NULL
           )",
        R"(main()
             iterate {
               t = 0, incr(t)
               scene = set_up(),
                 let <a, b> = split(scene)
                 in join(work(a), work(b))
             } while is_not_equal(t, 4), result scene)"));

}  // namespace
}  // namespace delirium
