// Circuit simulator app tests: cone-parallel simulation must match the
// sequential levelized simulator signature-for-signature.
#include <gtest/gtest.h>

#include "src/apps/circuit/circuit.h"
#include "src/delirium.h"

namespace delirium::circuit {
namespace {

TEST(CircuitModel, AdderAccumulates) {
  auto netlist = std::make_shared<const Netlist>(build_adder_accumulator());
  // Drive: inputs = value 3 every cycle (bits 0,1 set); acc should count
  // 3, 6, 9, 12 (mod 16). Use eval_all directly for full control.
  std::vector<uint8_t> regs(4, 0);
  int expected = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    const std::vector<uint8_t> inputs = {1, 1, 0, 0};  // 3
    const auto signals = eval_all(*netlist, inputs, regs);
    for (int r = 0; r < 4; ++r) regs[r] = signals[netlist->reg_next[r]];
    expected = (expected + 3) & 0xf;
    int acc = 0;
    for (int r = 0; r < 4; ++r) acc |= regs[r] << r;
    EXPECT_EQ(acc, expected) << "cycle " << cycle;
  }
}

TEST(CircuitModel, GateFunctions) {
  std::vector<uint8_t> sig = {0, 1};
  EXPECT_FALSE(eval_gate(Gate{GateKind::kAnd, 0, 1}, sig));
  EXPECT_TRUE(eval_gate(Gate{GateKind::kOr, 0, 1}, sig));
  EXPECT_TRUE(eval_gate(Gate{GateKind::kXor, 0, 1}, sig));
  EXPECT_TRUE(eval_gate(Gate{GateKind::kNand, 0, 1}, sig));
  EXPECT_TRUE(eval_gate(Gate{GateKind::kNot, 0}, sig));
  EXPECT_TRUE(eval_gate(Gate{GateKind::kBuf, 1}, sig));
}

TEST(CircuitModel, GeneratedNetlistIsLevelized) {
  CircuitParams p;
  p.num_gates = 500;
  const Netlist net = generate_netlist(p);
  const int base = net.num_inputs + net.num_regs;
  for (size_t g = 0; g < net.gates.size(); ++g) {
    EXPECT_LT(net.gates[g].a, base + static_cast<int>(g));
    if (net.gates[g].b >= 0) {
      EXPECT_LT(net.gates[g].b, base + static_cast<int>(g));
    }
  }
}

TEST(CircuitModel, SequentialSimulationDeterministic) {
  CircuitParams p;
  p.num_gates = 800;
  p.cycles = 16;
  EXPECT_EQ(simulate_sequential(p).signature, simulate_sequential(p).signature);
  CircuitParams q = p;
  q.seed = 99;
  EXPECT_NE(simulate_sequential(p).signature, simulate_sequential(q).signature);
}

TEST(CircuitModel, ConesCoverAllSinks) {
  CircuitParams p;
  p.num_gates = 600;
  const Netlist net = generate_netlist(p);
  const auto cones = partition_cones(net, 4);
  size_t outputs = 0, regs = 0;
  for (const Cone& c : cones) {
    outputs += c.outputs.size();
    regs += c.regs.size();
  }
  EXPECT_EQ(outputs, net.outputs.size());
  EXPECT_EQ(regs, net.reg_next.size());
}

class CircuitParallel : public ::testing::TestWithParam<int> {};

TEST_P(CircuitParallel, SignatureMatchesSequential) {
  const int workers = GetParam();
  CircuitParams p;
  p.num_gates = 1500;
  p.cycles = 12;
  p.seed = 5;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_circuit_operators(registry, p);
  CompiledProgram program = compile_or_throw(circuit_source(p), registry);
  Runtime runtime(registry, {.num_workers = workers});
  Value result = runtime.run(program);
  const CircuitBlock& block = result.block_as<CircuitBlock>();
  const SimState sequential = simulate_sequential(p);
  EXPECT_EQ(block.state.cycle, sequential.cycle);
  EXPECT_EQ(block.state.signature, sequential.signature);
  EXPECT_EQ(block.state.regs, sequential.regs);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, CircuitParallel, ::testing::Values(1, 2, 4));

TEST(CircuitParallelProperties, NoCopyOnWriteCopies) {
  CircuitParams p;
  p.num_gates = 800;
  p.cycles = 8;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_circuit_operators(registry, p);
  CompiledProgram program = compile_or_throw(circuit_source(p), registry);
  Runtime runtime(registry, {.num_workers = 4});
  runtime.run(program);
  EXPECT_EQ(runtime.last_stats().cow_copies, 0u);
}

}  // namespace
}  // namespace delirium::circuit
