// The §9.2 extension: parmap(f, package) — dynamic-degree parallelism.
// The paper's critique of its own model is that fork-join width is
// hard-wired by the programmer; its sequel generalizes the notation.
// parmap expands one subgraph per package element at run time.
#include <gtest/gtest.h>

#include "src/delirium.h"
#include "src/runtime/sim.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::eval_int;

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    reg.add("iota", 1, [](OpContext& ctx) {
      std::vector<Value> elems;
      for (int64_t i = 0; i < ctx.arg_int(0); ++i) elems.push_back(Value::of(i));
      return Value::tuple(std::move(elems));
    }).pure();
    reg.add("sum_package", 1, [](OpContext& ctx) {
      int64_t total = 0;
      for (const Value& v : ctx.arg(0).as_tuple().elems) total += v.as_int();
      return Value::of(total);
    }).pure();
    return reg;
  }();
  return r;
}

int64_t run(const std::string& source, int workers = 4) {
  CompiledProgram program = compile_or_throw(source, registry());
  Runtime runtime(registry(), {.num_workers = workers});
  return runtime.run(program).as_int();
}

TEST(ParMap, MapsAFunctionOverAPackage) {
  EXPECT_EQ(run(R"(
double(x) add(x, x)
main() sum_package(parmap(double, <1, 2, 3, 4>))
)"),
            20);
}

TEST(ParMap, DynamicWidthFromRuntimeValue) {
  // The degree of parallelism comes from data, not the program text —
  // exactly what §9.2 says the base model cannot do.
  EXPECT_EQ(run(R"(
square(x) mul(x, x)
width() 10
main() sum_package(parmap(square, iota(width())))
)"),
            285);
}

TEST(ParMap, PreservesElementOrder) {
  OperatorRegistry& reg = registry();
  CompiledProgram program = compile_or_throw(R"(
tag(x) mul(x, 10)
main() parmap(tag, <3, 1, 2>)
)",
                                             reg);
  Runtime runtime(reg, {.num_workers = 4});
  const Value result = runtime.run(program);
  const MultiValue& mv = result.as_tuple();
  ASSERT_EQ(mv.elems.size(), 3u);
  EXPECT_EQ(mv.elems[0].as_int(), 30);
  EXPECT_EQ(mv.elems[1].as_int(), 10);
  EXPECT_EQ(mv.elems[2].as_int(), 20);
}

TEST(ParMap, EmptyPackageYieldsEmptyPackage) {
  OperatorRegistry& reg = registry();
  CompiledProgram program = compile_or_throw(R"(
id(x) x
main() parmap(id, iota(0))
)",
                                             reg);
  Runtime runtime(reg, {.num_workers = 2});
  EXPECT_TRUE(runtime.run(program).as_tuple().elems.empty());
}

TEST(ParMap, WorksWithClosures) {
  EXPECT_EQ(run(R"(
main()
  let base = 100
      addb(x) add(x, base)
  in sum_package(parmap(addb, <1, 2, 3>))
)"),
            306);
}

TEST(ParMap, NestsAndRecurses) {
  EXPECT_EQ(run(R"(
inner(x) add(x, 1)
outer(p) sum_package(parmap(inner, <p, p>))
main() sum_package(parmap(outer, <1, 2, 3>))
)"),
            18);  // outer(p) = 2p+2 -> 4 + 6 + 8
}

TEST(ParMap, TailPositionForwardsContinuation) {
  EXPECT_EQ(run(R"(
id(x) x
pass(p) parmap(id, p)
main() sum_package(pass(<5, 6>))
)"),
            11);
}

TEST(ParMap, DeterministicAcrossWorkerCounts) {
  const std::string source = R"(
work(x) mul(add(x, 3), sub(x, 1))
main() sum_package(parmap(work, iota(40)))
)";
  const int64_t expected = run(source, 1);
  for (int workers : {2, 4, 8}) {
    EXPECT_EQ(run(source, workers), expected) << workers;
  }
}

TEST(ParMap, VirtualTimeAgreesAndScales) {
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("chunk", 1, [](OpContext& ctx) {
    volatile double acc = 0;
    for (int i = 0; i < 100000; ++i) acc = acc + i;
    (void)acc;
    return ctx.take(0);
  }).pure();
  reg.add("mkpkg", 0, [](OpContext&) {
    std::vector<Value> elems;
    for (int64_t i = 0; i < 16; ++i) elems.push_back(Value::of(i));
    return Value::tuple(std::move(elems));
  });
  reg.add("count_pkg", 1, [](OpContext& ctx) {
    return Value::of(static_cast<int64_t>(ctx.arg(0).as_tuple().elems.size()));
  }).pure();
  // Operators are not first class (§3): wrap chunk in a function.
  CompiledProgram program = compile_or_throw(R"(
work(x) chunk(x)
main() count_pkg(parmap(work, mkpkg()))
)",
                                             reg);
  const CostTable costs = calibrate_costs(reg, program, 3);
  auto makespan_at = [&](int procs) {
    SimConfig config;
    config.num_procs = procs;
    config.replay_costs = &costs;
    SimRuntime sim(reg, config);
    SimResult result = sim.run(program);
    EXPECT_EQ(result.result.as_int(), 16);
    return static_cast<double>(result.makespan);
  };
  // 16 independent chunks: unlike the hard-wired 4-way retina split,
  // parmap keeps scaling past 4 processors. Thresholds leave headroom
  // for calibration noise under load (ideal: 4x and 8x).
  const double one = makespan_at(1);
  EXPECT_GT(one / makespan_at(4), 2.5);
  EXPECT_GT(one / makespan_at(8), 4.0);
}

TEST(ParMap, WrongFunctionArityIsRuntimeError) {
  OperatorRegistry& reg = registry();
  CompiledProgram program = compile_or_throw(R"(
two(a, b) add(a, b)
main() parmap(two, <1, 2>)
)",
                                             reg);
  Runtime runtime(reg, {.num_workers = 2});
  EXPECT_THROW(runtime.run(program), RuntimeError);
}

TEST(ParMap, NonPackageArgumentIsRuntimeError) {
  OperatorRegistry& reg = registry();
  CompiledProgram program = compile_or_throw(R"(
id(x) x
main() parmap(id, 7)
)",
                                             reg);
  Runtime runtime(reg, {.num_workers = 2});
  EXPECT_THROW(runtime.run(program), RuntimeError);
}

TEST(ParMap, WrongArityIsCompileError) {
  EXPECT_THROW(compile_or_throw("id(x) x\nmain() parmap(id)", registry()),
               std::runtime_error);
}

TEST(ParMap, NameCanBeShadowed) {
  // A user function named parmap takes precedence over the special form.
  EXPECT_EQ(run(R"(
parmap(a, b) add(a, b)
main() parmap(1, 2)
)"),
            3);
}

}  // namespace
}  // namespace delirium
