// N-queens app tests: the §3 program generalized to N, checked against
// the sequential backtracker and known solution counts.
#include <gtest/gtest.h>

#include "src/apps/queens/queens.h"
#include "src/delirium.h"
#include "src/runtime/sim.h"

namespace delirium::queens {
namespace {

// Known values: number of N-queens solutions for N = 1..10.
constexpr int64_t kKnown[] = {1, 0, 0, 2, 10, 4, 40, 92, 352, 724};

TEST(QueensSequential, MatchesKnownCounts) {
  for (int n = 1; n <= 9; ++n) {
    EXPECT_EQ(count_solutions_sequential(n), kKnown[n - 1]) << "n=" << n;
  }
}

TEST(QueensSequential, SolutionsAreValidBoards) {
  for (const Board& b : solve_sequential(6)) {
    ASSERT_EQ(b.size(), 6u);
    Board prefix;
    for (int8_t row : b) {
      prefix.push_back(row);
      EXPECT_TRUE(board_valid(prefix));
    }
  }
}

class QueensDelirium : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QueensDelirium, MatchesSequentialCount) {
  const int n = std::get<0>(GetParam());
  const int workers = std::get<1>(GetParam());
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_queens_operators(registry, n);
  CompiledProgram program = compile_or_throw(queens_source(n), registry);
  Runtime runtime(registry, {.num_workers = workers});
  EXPECT_EQ(runtime.run(program).as_int(), count_solutions_sequential(n));
}

std::string queens_param_name(const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
  return "N" + std::to_string(std::get<0>(info.param)) + "Workers" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Sizes, QueensDelirium,
                         ::testing::Combine(::testing::Values(1, 4, 5, 6, 8),
                                            ::testing::Values(1, 4)),
                         queens_param_name);

TEST(QueensDelirium, PriorityQueueBoundsActivations) {
  // §7: the three-level priority scheme frees activations early. With
  // priorities the peak must be well below the count without them.
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_queens_operators(registry, 7);
  CompiledProgram program = compile_or_throw(queens_source(7), registry);

  SimConfig with_config{.num_procs = 4};
  with_config.use_priorities = true;
  SimConfig without_config{.num_procs = 4};
  without_config.use_priorities = false;
  SimRuntime with(registry, with_config);
  SimRuntime without(registry, without_config);
  const SimResult a = with.run(program);
  const SimResult b = without.run(program);
  EXPECT_EQ(a.result.as_int(), b.result.as_int());  // values identical
  EXPECT_LT(a.stats.peak_live_activations, b.stats.peak_live_activations);
}

TEST(QueensDelirium, VirtualAndThreadedRuntimesAgree) {
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_queens_operators(registry, 6);
  CompiledProgram program = compile_or_throw(queens_source(6), registry);
  Runtime threaded(registry, {.num_workers = 3});
  SimRuntime virtual_time(registry, {.num_procs = 3});
  EXPECT_EQ(threaded.run(program).as_int(), virtual_time.run(program).result.as_int());
}

}  // namespace
}  // namespace delirium::queens
