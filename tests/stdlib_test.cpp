// Package standard library + tail-call ablation tests.
#include <gtest/gtest.h>

#include "src/runtime/sim.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::eval;
using testing::eval_int;

TEST(PackageStdlib, SizeGetAppend) {
  EXPECT_EQ(eval_int("main() package_size(<1, 2, 3>)"), 3);
  EXPECT_EQ(eval_int("main() package_size(range(0))"), 0);
  EXPECT_EQ(eval_int("main() package_get(<10, 20, 30>, 1)"), 20);
  EXPECT_EQ(eval_int("main() package_size(package_append(<1>, 2))"), 2);
  EXPECT_EQ(eval_int("main() package_get(package_append(<1>, 99), 1)"), 99);
}

TEST(PackageStdlib, ConcatReverseSlice) {
  EXPECT_EQ(eval_int("main() package_size(package_concat(<1, 2>, <3>))"), 3);
  EXPECT_EQ(eval_int("main() package_get(package_reverse(<1, 2, 3>), 0)"), 3);
  EXPECT_EQ(eval_int("main() package_size(package_slice(range(10), 2, 7))"), 5);
  EXPECT_EQ(eval_int("main() package_get(package_slice(range(10), 2, 7), 0)"), 2);
}

TEST(PackageStdlib, RangeFeedsParmap) {
  EXPECT_EQ(eval_int(R"(
square(x) mul(x, x)
total(p)
  iterate {
    i = 0, incr(i)
    acc = 0, add(acc, package_get(p, i))
  } while is_not_equal(i, package_size(p)), result acc
main() total(parmap(square, range(10)))
)"),
            285);
}

TEST(PackageStdlib, Errors) {
  EXPECT_THROW(eval("main() package_get(<1>, 5)"), RuntimeError);
  EXPECT_THROW(eval("main() package_get(<1>, -1)"), RuntimeError);
  EXPECT_THROW(eval("main() package_slice(<1, 2>, 1, 9)"), RuntimeError);
  EXPECT_THROW(eval("main() range(-3)"), RuntimeError);
  EXPECT_THROW(eval("main() package_size(7)"), RuntimeError);
}

TEST(TailCallAblation, DisablingForwardingNestsActivations) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(R"(
main()
  iterate {
    i = 0, incr(i)
  } while is_not_equal(i, 5000), result i
)",
                                             *reg);
  Runtime with_tail(*reg, {.num_workers = 2});
  RuntimeConfig no_tail_config{.num_workers = 2};
  no_tail_config.enable_tail_calls = false;
  Runtime without_tail(*reg, no_tail_config);
  EXPECT_EQ(with_tail.run(program).as_int(), 5000);
  EXPECT_EQ(without_tail.run(program).as_int(), 5000);  // values unchanged
  EXPECT_LT(with_tail.last_stats().peak_live_activations, 100u);
  // Without forwarding, the loop's continuation chain keeps every
  // iteration's activations alive until the loop bottoms out.
  EXPECT_GT(without_tail.last_stats().peak_live_activations, 4000u);
}

TEST(TailCallAblation, SimAgrees) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(R"(
main()
  iterate {
    i = 0, incr(i)
  } while is_not_equal(i, 2000), result i
)",
                                             *reg);
  SimRuntime with_tail(*reg, {.num_procs = 2});
  SimConfig no_tail_cfg;
  no_tail_cfg.num_procs = 2;
  no_tail_cfg.enable_tail_calls = false;
  SimRuntime without_tail(*reg, no_tail_cfg);
  const SimResult a = with_tail.run(program);
  const SimResult b = without_tail.run(program);
  EXPECT_EQ(a.result.as_int(), b.result.as_int());
  EXPECT_LT(a.stats.peak_live_activations, 100u);
  EXPECT_GT(b.stats.peak_live_activations, 1500u);
}

}  // namespace
}  // namespace delirium
