// Coordination-pattern gallery: §2.1 claims Delirium "can compactly
// express complicated parallel control patterns ... using only a few
// notational devices". Each test expresses a classic parallel pattern
// purely in the language (built-in operators only) and checks it against
// a plain C++ reference, at several worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "tests/test_util.h"

namespace delirium {
namespace {

int64_t run_everywhere(const std::string& source) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(source, *reg);
  int64_t expected = 0;
  bool first = true;
  for (int workers : {1, 4}) {
    Runtime runtime(*reg, {.num_workers = workers});
    const int64_t v = runtime.run(program).as_int();
    if (first) {
      expected = v;
      first = false;
    } else {
      EXPECT_EQ(v, expected) << "workers " << workers;
    }
  }
  return expected;
}

TEST(Patterns, DivideAndConquerReduction) {
  // Recursive halving sum over a package: the classic reduction tree.
  const std::string source = R"(
sum_range(p, lo, hi)
  if is_equal(sub(hi, lo), 1)
    then package_get(p, lo)
    else let mid = add(lo, div(sub(hi, lo), 2))
             left = sum_range(p, lo, mid)
             right = sum_range(p, mid, hi)
         in add(left, right)
main()
  let p = range(64)
  in sum_range(p, 0, package_size(p))
)";
  EXPECT_EQ(run_everywhere(source), 64 * 63 / 2);
}

TEST(Patterns, ParallelMergesort) {
  // Divide-and-conquer sort of a package; merge is an iterate.
  const std::string source = R"(
-- which source supplies the next element, given current positions
pick_a(a, b, i, j)
  if is_equal(i, package_size(a)) then 0
  else if is_equal(j, package_size(b)) then 1
  else less_equal(package_get(a, i), package_get(b, j))

-- merge two sorted packages; every step consults pick_a with the
-- *current* iteration's positions, so the decisions agree
merge2(a, b)
  iterate {
    i = 0, if pick_a(a, b, i, j) then incr(i) else i
    j = 0, if pick_a(a, b, i, j) then j else incr(j)
    out = range(0),
      if pick_a(a, b, i, j)
        then package_append(out, package_get(a, i))
        else package_append(out, package_get(b, j))
  } while less_than(add(i, j), add(package_size(a), package_size(b))), result out

msort(p)
  if less_equal(package_size(p), 1)
    then p
    else let mid = div(package_size(p), 2)
             left = msort(package_slice(p, 0, mid))
             right = msort(package_slice(p, mid, package_size(p)))
         in merge2(left, right)

-- a deterministic scramble: k -> (k * 37) mod 101
scramble(k) mod(mul(k, 37), 101)

is_sorted(p)
  iterate {
    i = 0, incr(i)
    ok = 1,
      if less_than(incr(i), package_size(p))
        then and(ok, less_equal(package_get(p, i), package_get(p, incr(i))))
        else ok
  } while less_than(incr(i), package_size(p)), result ok

main()
  let sorted = msort(parmap(scramble, range(32)))
  in if is_sorted(sorted)
       then package_get(sorted, 0)
       else -1
)";
  // min over k in 0..31 of (37k mod 101).
  int64_t expected = 1000;
  for (int64_t k = 0; k < 32; ++k) expected = std::min(expected, (k * 37) % 101);
  EXPECT_EQ(run_everywhere(source), expected);
}

TEST(Patterns, PipelineThroughIterate) {
  // A three-stage pipeline carried through loop variables: stage s2 sees
  // the value s1 produced in the *previous* iteration, so the stages of
  // different items overlap (software pipelining through dataflow).
  const std::string source = R"(
main()
  iterate {
    t = 0, incr(t)
    s1 = 0, mul(t, t)          -- stage 1: square the tick
    s2 = 0, add(s1, 1)         -- stage 2: sees last iteration's s1
    total = 0, add(total, s2)  -- stage 3: accumulate
  } while is_not_equal(t, 10), result total
)";
  // Reference: simulate the staggered pipeline.
  int64_t s1 = 0, s2 = 0, total = 0;
  for (int64_t t = 0; t != 10; ++t) {
    const int64_t ns1 = t * t, ns2 = s1 + 1, ntotal = total + s2;
    s1 = ns1;
    s2 = ns2;
    total = ntotal;
  }
  EXPECT_EQ(run_everywhere(source), total);
}

TEST(Patterns, MapReduceWithParmap) {
  const std::string source = R"(
square(x) mul(x, x)
reduce(p, lo, hi)
  if is_equal(sub(hi, lo), 1)
    then package_get(p, lo)
    else let mid = add(lo, div(sub(hi, lo), 2))
         in add(reduce(p, lo, mid), reduce(p, mid, hi))
main()
  let squares = parmap(square, range(32))
  in reduce(squares, 0, package_size(squares))
)";
  int64_t expected = 0;
  for (int64_t k = 0; k < 32; ++k) expected += k * k;
  EXPECT_EQ(run_everywhere(source), expected);
}

TEST(Patterns, WavefrontOverTriangularDependencies) {
  // d[i][j] = d[i-1][j] + d[i][j-1], computed row by row where each row
  // is a package derived from the previous row — the anti-diagonal
  // parallelism appears inside build_row's parmap.
  const std::string source = R"(
-- next[j] = prev[j] + next[j-1]; a left-to-right scan of the row
scan_row(prev)
  iterate {
    j = 0, incr(j)
    row = range(0),
      let left = if is_equal(j, 0) then 0 else package_get(row, decr(j))
      in package_append(row, add(package_get(prev, j), left))
  } while is_not_equal(j, package_size(prev)), result row

main()
  iterate {
    i = 0, incr(i)
    row = parmap_id(range_ones(8)), scan_row(row)
  } while is_not_equal(i, 7), result row
range_ones(n)
  iterate {
    k = 0, incr(k)
    p = range(0), package_append(p, 1)
  } while is_not_equal(k, n), result p
parmap_id(p) p
)";
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(source, *reg);
  Runtime runtime(*reg, {.num_workers = 3});
  const Value result = runtime.run(program);
  // Reference: Pascal-like wavefront, 7 scan steps over an all-ones row.
  std::vector<int64_t> row(8, 1);
  for (int i = 0; i < 7; ++i) {
    std::vector<int64_t> next(8);
    int64_t left = 0;
    for (int j = 0; j < 8; ++j) {
      next[j] = row[j] + left;
      left = next[j];
    }
    row = next;
  }
  const MultiValue& mv = result.as_tuple();
  ASSERT_EQ(mv.elems.size(), row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    EXPECT_EQ(mv.elems[j].as_int(), row[j]) << "column " << j;
  }
}

TEST(Patterns, RecursiveBacktrackingSkeleton) {
  // The §3 queens skeleton in miniature: explore a branching space,
  // count leaves satisfying a predicate (here: 3-bit strings with no two
  // adjacent ones — the Fibonacci-ish count).
  const std::string source = R"(
explore(depth, last)
  if is_equal(depth, 0)
    then 1
    else let with_zero = explore(decr(depth), 0)
             with_one = if last then 0 else explore(decr(depth), 1)
         in add(with_zero, with_one)
main() explore(10, 0)
)";
  // Count of binary strings of length 10 with no "11": F(12) = 144.
  EXPECT_EQ(run_everywhere(source), 144);
}

}  // namespace
}  // namespace delirium
