// Macro expansion unit tests: symbolic constants, function-like macros,
// hygiene, and error cases.
#include <gtest/gtest.h>

#include "src/lang/macro.h"
#include "src/lang/parser.h"
#include "src/lang/pretty.h"

namespace delirium {
namespace {

struct Expanded {
  AstContext ctx;
  Program program;
  DiagnosticEngine diags;
  std::string body;  // printed body of main after expansion
};

std::unique_ptr<Expanded> expand(const std::string& text) {
  auto out = std::make_unique<Expanded>();
  SourceFile file("<test>", text);
  out->program = parse_source(file, out->ctx, out->diags);
  expand_macros(out->program, out->ctx, out->diags);
  if (FuncDecl* main_fn = out->program.find_function("main")) {
    out->body = expr_to_string(main_fn->body);
  }
  return out;
}

TEST(Macro, SymbolicConstant) {
  auto e = expand("define N = 10\nmain() add(N, N)");
  EXPECT_FALSE(e->diags.has_errors());
  EXPECT_EQ(e->body, "add(10, 10)");
}

TEST(Macro, ConstantCanBeAnExpression) {
  auto e = expand("define N = add(1, 2)\nmain() N");
  EXPECT_EQ(e->body, "add(1, 2)");
}

TEST(Macro, FunctionLikeMacro) {
  auto e = expand("define TWICE(x) = add(x, x)\nmain() TWICE(5)");
  EXPECT_EQ(e->body, "add(5, 5)");
}

TEST(Macro, MacroArgumentsAreExpressions) {
  auto e = expand("define TWICE(x) = add(x, x)\nmain() TWICE(mul(2, 3))");
  EXPECT_EQ(e->body, "add(mul(2, 3), mul(2, 3))");
}

TEST(Macro, NestedMacroUse) {
  auto e = expand(R"(
define A = 1
define PLUS_A(x) = add(x, A)
main() PLUS_A(PLUS_A(0))
)");
  EXPECT_EQ(e->body, "add(add(0, 1), 1)");
}

TEST(Macro, MacroReferencingMacro) {
  auto e = expand("define A = 2\ndefine B = add(A, 1)\nmain() B");
  EXPECT_EQ(e->body, "add(2, 1)");
}

TEST(Macro, ShadowedByLetBinding) {
  // A let-bound name hides a macro parameter of the same name inside the
  // macro body (hygiene with respect to shadowing).
  auto e = expand(R"(
define GET(x) = let x = 99 in x
main() GET(5)
)");
  EXPECT_FALSE(e->diags.has_errors());
  // The inner x is the let-bound one, not the argument.
  EXPECT_EQ(e->body, "let\n    x = 99\n  in x");
}

TEST(Macro, ParameterVisibleInUnshadowedPositions) {
  auto e = expand(R"(
define GET(v) = let y = v in add(y, v)
main() GET(7)
)");
  EXPECT_EQ(e->body, "let\n    y = 7\n  in add(y, 7)");
}

TEST(Macro, SubstitutionInsideIterate) {
  auto e = expand(R"(
define LIMIT = 3
main() iterate { i = 0, incr(i) } while is_not_equal(i, LIMIT), result i
)");
  EXPECT_NE(e->body.find("is_not_equal(i, 3)"), std::string::npos);
}

TEST(Macro, WrongArityIsError) {
  auto e = expand("define TWICE(x) = add(x, x)\nmain() TWICE(1, 2)");
  EXPECT_TRUE(e->diags.has_errors());
}

TEST(Macro, RecursiveMacroIsError) {
  auto e = expand("define LOOP = add(LOOP, 1)\nmain() LOOP");
  EXPECT_TRUE(e->diags.has_errors());
}

TEST(Macro, MutuallyRecursiveMacrosAreError) {
  auto e = expand("define A = B\ndefine B = A\nmain() A");
  EXPECT_TRUE(e->diags.has_errors());
}

TEST(Macro, DuplicateDefinitionIsError) {
  auto e = expand("define N = 1\ndefine N = 2\nmain() N");
  EXPECT_TRUE(e->diags.has_errors());
}

TEST(Macro, MacrosClearedAfterExpansion) {
  auto e = expand("define N = 1\nmain() N");
  EXPECT_TRUE(e->program.macros.empty());
}

TEST(Macro, UnusedMacroIsHarmless) {
  auto e = expand("define UNUSED = boom()\nmain() 1");
  EXPECT_FALSE(e->diags.has_errors());
  EXPECT_EQ(e->body, "1");
}

TEST(Substitute, RespectsFunctionParamShadowing) {
  AstContext ctx;
  DiagnosticEngine diags;
  SourceFile file("<t>", "main() let f(v) v in f(v)");
  Program program = parse_source(file, ctx, diags);
  std::unordered_map<std::string, const Expr*> subst;
  Expr* replacement = ctx.make_int(9);
  subst["v"] = replacement;
  Expr* result = substitute(program.functions[0]->body, subst, ctx);
  // Outer use of v replaced; inner (param-bound) use untouched.
  EXPECT_EQ(expr_to_string(result), "let\n    f(v) v\n  in f(9)");
}

}  // namespace
}  // namespace delirium
