// Error-propagation equivalence: a faulting program must report the
// *same* error — byte-identical text, same counters — under the threaded
// runtime with either scheduler at any worker count, and under the
// virtual-time simulator. The fault report is a function of the
// coordination graph (structural sequence ids, drain-time min-seq
// selection), never of the schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/sim.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ScopedEnv;

TEST(FaultEquivalence, IdenticalReportAcrossSchedulersWorkerCountsAndSim) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("boom_a", 1, [](OpContext&) -> Value { throw RuntimeError("alpha failure"); })
      .pure();
  reg->add("boom_b", 1, [](OpContext&) -> Value { throw RuntimeError("beta failure"); })
      .pure();
  // Two *independently* faulting operators, one behind a call, so the
  // winning fault carries a non-trivial coordination stack. Unoptimized
  // keeps `inner` out of line.
  testing::ExecutorFixture fixture(*reg);
  fixture.compile_options().optimize = false;
  // The fixture asserts the byte-identical report and fault count across
  // both schedulers × {1, 2, 8} workers and the simulator at 1/4 procs.
  const testing::ExecutorOutcome ref = fixture.expect_equivalent(R"(
    inner(x) boom_a(x)
    main() add(inner(1), boom_b(2))
  )");
  ASSERT_TRUE(ref.faulted()) << "expected FaultError";
  EXPECT_THROW(ref.value_or_rethrow(), FaultError);
  EXPECT_EQ(ref.stats.faults_raised, 2u)
      << "both faults must be captured, not just the first";
  EXPECT_NE(ref.error_text.find("coordination stack:"), std::string::npos)
      << ref.error_text;
}

TEST(FaultEquivalence, ConcurrentFaultsReportDeterministically) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  // Both operators rendezvous before throwing, so with >1 worker the two
  // faults are genuinely concurrent — a first-observed-wins race would
  // report a different winner from rep to rep.
  auto arrived = std::make_shared<std::atomic<int>>(0);
  auto reg = testing::builtin_registry();
  reg->add("gated_boom", 1, [arrived](OpContext& ctx) -> Value {
       arrived->fetch_add(1);
       const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
       while (arrived->load() < 2 && std::chrono::steady_clock::now() < deadline) {
         std::this_thread::yield();
       }
       throw RuntimeError("gated fault " + std::to_string(ctx.arg_int(0)));
     })
      .pure();
  CompiledProgram program =
      compile_or_throw("main() add(gated_boom(0), gated_boom(1))", *reg);

  std::string expected;
  for (int workers : {2, 8}) {
    RuntimeConfig config;
    config.num_workers = workers;
    Runtime runtime(*reg, config);
    for (int rep = 0; rep < 4; ++rep) {
      arrived->store(0);
      try {
        runtime.run(program);
        ADD_FAILURE() << "expected FaultError";
      } catch (const FaultError& e) {
        if (expected.empty()) {
          expected = e.what();
        } else {
          EXPECT_EQ(std::string(e.what()), expected)
              << "workers=" << workers << " rep=" << rep;
        }
      }
      EXPECT_EQ(runtime.last_stats().faults_raised, 2u);
    }
  }
}

TEST(FaultEquivalence, InjectionWithRetriesMatchesFaultFreeValues) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  // Recursive, so call arguments are not compile-time constants and the
  // builtin fold callbacks cannot erase the injection sites.
  const std::string source =
      "f(n) if less_than(n, 2) then n else add(f(sub(n, 1)), f(sub(n, 2)))\n"
      "main() f(12)";

  auto clean_reg = testing::builtin_registry();
  CompiledProgram clean_program = compile_or_throw(source, *clean_reg);
  SimRuntime clean_sim(*clean_reg, {});
  const Value expected = clean_sim.run(clean_program).result;

  auto fault_reg = testing::builtin_registry();
  fault_reg->set_fault_plan(std::make_shared<const FaultPlan>(
      FaultPlan::parse("*:throw:every=3:seed=9:fail_attempts=1")));

  // The every= selector hashes (seed, activation seq, node): structural,
  // so the set of injected invocations — and hence the injection/retry
  // counters and kRetry trace events the fixture compares — is identical
  // across executors, schedulers, and worker counts.
  testing::ExecutorFixture fixture(*fault_reg);
  fixture.config().max_retries = 2;
  const testing::ExecutorOutcome ref = fixture.expect_equivalent(source);
  ASSERT_FALSE(ref.faulted()) << ref.error_text;
  EXPECT_TRUE(deep_equal(ref.value, expected));
  EXPECT_GT(ref.stats.faults_injected, 0u) << "plan never fired: selector too narrow";
  EXPECT_EQ(ref.stats.faults_raised, 0u);
  EXPECT_EQ(ref.stats.retries, ref.stats.faults_injected);
}

}  // namespace
}  // namespace delirium
