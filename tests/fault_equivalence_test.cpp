// Error-propagation equivalence: a faulting program must report the
// *same* error — byte-identical text, same counters — under the threaded
// runtime with either scheduler at any worker count, and under the
// virtual-time simulator. The fault report is a function of the
// coordination graph (structural sequence ids, drain-time min-seq
// selection), never of the schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/runtime/sim.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::ScopedEnv;

struct Outcome {
  std::string text;
  uint64_t faults_raised = 0;
};

Outcome run_threaded_expecting_fault(const CompiledProgram& program,
                                     const OperatorRegistry& reg, SchedulerKind scheduler,
                                     int workers) {
  RuntimeConfig config;
  config.num_workers = workers;
  config.scheduler = scheduler;
  Runtime runtime(reg, config);
  try {
    runtime.run(program);
    ADD_FAILURE() << "expected FaultError (workers=" << workers << ")";
    return {};
  } catch (const FaultError& e) {
    return {e.what(), runtime.last_stats().faults_raised};
  }
}

TEST(FaultEquivalence, IdenticalReportAcrossSchedulersWorkerCountsAndSim) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  auto reg = testing::builtin_registry();
  reg->add("boom_a", 1, [](OpContext&) -> Value { throw RuntimeError("alpha failure"); })
      .pure();
  reg->add("boom_b", 1, [](OpContext&) -> Value { throw RuntimeError("beta failure"); })
      .pure();
  // Two *independently* faulting operators, one behind a call, so the
  // winning fault carries a non-trivial coordination stack. Unoptimized
  // keeps `inner` out of line.
  CompileOptions copts;
  copts.optimize = false;
  CompiledProgram program = compile_or_throw(R"(
    inner(x) boom_a(x)
    main() add(inner(1), boom_b(2))
  )",
                                             *reg, copts);

  const Outcome ref =
      run_threaded_expecting_fault(program, *reg, SchedulerKind::kGlobalLock, 1);
  EXPECT_EQ(ref.faults_raised, 2u) << "both faults must be captured, not just the first";
  EXPECT_NE(ref.text.find("coordination stack:"), std::string::npos) << ref.text;

  for (SchedulerKind scheduler :
       {SchedulerKind::kGlobalLock, SchedulerKind::kWorkStealing}) {
    for (int workers : {1, 2, 8}) {
      const Outcome got = run_threaded_expecting_fault(program, *reg, scheduler, workers);
      const std::string where =
          std::string(scheduler == SchedulerKind::kWorkStealing ? "work_stealing"
                                                                : "global_lock") +
          " workers=" + std::to_string(workers);
      EXPECT_EQ(got.text, ref.text) << where;
      EXPECT_EQ(got.faults_raised, ref.faults_raised) << where;
    }
  }

  for (int procs : {1, 4}) {
    SimConfig config;
    config.num_procs = procs;
    SimRuntime sim(*reg, config);
    try {
      sim.run(program);
      ADD_FAILURE() << "expected FaultError (sim procs=" << procs << ")";
    } catch (const FaultError& e) {
      EXPECT_EQ(std::string(e.what()), ref.text) << "sim procs=" << procs;
    }
  }
}

TEST(FaultEquivalence, ConcurrentFaultsReportDeterministically) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  // Both operators rendezvous before throwing, so with >1 worker the two
  // faults are genuinely concurrent — a first-observed-wins race would
  // report a different winner from rep to rep.
  auto arrived = std::make_shared<std::atomic<int>>(0);
  auto reg = testing::builtin_registry();
  reg->add("gated_boom", 1, [arrived](OpContext& ctx) -> Value {
       arrived->fetch_add(1);
       const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
       while (arrived->load() < 2 && std::chrono::steady_clock::now() < deadline) {
         std::this_thread::yield();
       }
       throw RuntimeError("gated fault " + std::to_string(ctx.arg_int(0)));
     })
      .pure();
  CompiledProgram program =
      compile_or_throw("main() add(gated_boom(0), gated_boom(1))", *reg);

  std::string expected;
  for (int workers : {2, 8}) {
    RuntimeConfig config;
    config.num_workers = workers;
    Runtime runtime(*reg, config);
    for (int rep = 0; rep < 4; ++rep) {
      arrived->store(0);
      try {
        runtime.run(program);
        ADD_FAILURE() << "expected FaultError";
      } catch (const FaultError& e) {
        if (expected.empty()) {
          expected = e.what();
        } else {
          EXPECT_EQ(std::string(e.what()), expected)
              << "workers=" << workers << " rep=" << rep;
        }
      }
      EXPECT_EQ(runtime.last_stats().faults_raised, 2u);
    }
  }
}

TEST(FaultEquivalence, InjectionWithRetriesMatchesFaultFreeValues) {
  ScopedEnv env({"DELIRIUM_INJECT_FAULTS", "DELIRIUM_RETRIES"});
  // Recursive, so call arguments are not compile-time constants and the
  // builtin fold callbacks cannot erase the injection sites.
  const std::string source =
      "f(n) if less_than(n, 2) then n else add(f(sub(n, 1)), f(sub(n, 2)))\n"
      "main() f(12)";

  auto clean_reg = testing::builtin_registry();
  CompiledProgram clean_program = compile_or_throw(source, *clean_reg);
  SimRuntime clean_sim(*clean_reg, {});
  const Value expected = clean_sim.run(clean_program).result;

  auto fault_reg = testing::builtin_registry();
  fault_reg->set_fault_plan(std::make_shared<const FaultPlan>(
      FaultPlan::parse("*:throw:every=3:seed=9:fail_attempts=1")));
  CompiledProgram program = compile_or_throw(source, *fault_reg);

  // The every= selector hashes (seed, activation seq, node): structural,
  // so the set of injected invocations — and hence every counter below —
  // is identical across executors, schedulers, and worker counts.
  SimConfig sim_config;
  sim_config.max_retries = 2;
  SimRuntime sim(*fault_reg, sim_config);
  const SimResult r = sim.run(program);
  EXPECT_TRUE(deep_equal(r.result, expected));
  EXPECT_GT(r.stats.faults_injected, 0u) << "plan never fired: selector too narrow";
  EXPECT_EQ(r.stats.faults_raised, 0u);
  EXPECT_EQ(r.stats.retries, r.stats.faults_injected);
  const uint64_t ref_injected = r.stats.faults_injected;

  for (SchedulerKind scheduler :
       {SchedulerKind::kGlobalLock, SchedulerKind::kWorkStealing}) {
    for (int workers : {1, 4}) {
      RuntimeConfig config;
      config.num_workers = workers;
      config.scheduler = scheduler;
      config.max_retries = 2;
      Runtime runtime(*fault_reg, config);
      const Value got = runtime.run(program);
      const RunStats s = runtime.last_stats();
      const std::string where = "workers=" + std::to_string(workers);
      EXPECT_TRUE(deep_equal(got, expected)) << where;
      EXPECT_EQ(s.faults_injected, ref_injected) << where;
      EXPECT_EQ(s.faults_raised, 0u) << where;
    }
  }
}

}  // namespace
}  // namespace delirium
