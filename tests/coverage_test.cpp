// Focused coverage for corners the broader suites cross only
// incidentally: pretty-printer output details, registry metadata, dcc
// coordination-source structure, retina v1/v2 equivalence, circuit cone
// counts, and scheduler-affinity behaviour under replayed costs.
#include <gtest/gtest.h>

#include "src/apps/circuit/circuit.h"
#include "src/apps/dcc/dcc.h"
#include "src/apps/retina/retina_ops.h"
#include "src/delirium.h"
#include "src/lang/parser.h"
#include "src/lang/pretty.h"
#include "src/runtime/sim.h"

namespace delirium {
namespace {

// --- pretty printer -------------------------------------------------------

std::string reprint(const std::string& text) {
  SourceFile file("<t>", text);
  DiagnosticEngine diags;
  AstContext ctx;
  Program program = parse_source(file, ctx, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.summary(file);
  return program_to_string(program);
}

TEST(Pretty, FloatsAlwaysReparseAsFloats) {
  // 2.0 must not print as "2" (which would re-lex as an integer).
  EXPECT_NE(reprint("main() 2.0").find("2.0"), std::string::npos);
  EXPECT_NE(reprint("main() 0.5").find("0.5"), std::string::npos);
}

TEST(Pretty, StringsEscape) {
  const std::string out = reprint(R"(main() "a\nb\"c\\d")");
  EXPECT_NE(out.find(R"("a\nb\"c\\d")"), std::string::npos);
}

TEST(Pretty, ComputedCalleesAreParenthesized) {
  const std::string out = reprint("main() f(1)(2)");
  EXPECT_NE(out.find("(f(1))(2)"), std::string::npos);
}

TEST(Pretty, MacrosPrintAsDefines) {
  SourceFile file("<t>", "define N = 3\ndefine TW(x) = add(x, x)\nmain() TW(N)");
  DiagnosticEngine diags;
  AstContext ctx;
  Program program = parse_source(file, ctx, diags);
  const std::string out = program_to_string(program);
  EXPECT_NE(out.find("define N = 3"), std::string::npos);
  EXPECT_NE(out.find("define TW(x) = add(x, x)"), std::string::npos);
}

// --- registry metadata ----------------------------------------------------------

TEST(Registry, FluentAnnotationsStick) {
  OperatorRegistry reg;
  reg.add("op", 3, [](OpContext& ctx) { return ctx.take(0); })
      .destructive(0)
      .destructive(2)
      .variadic();
  const OperatorInfo* info = reg.lookup("op");
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->pure);
  EXPECT_TRUE(info->variadic);
  EXPECT_EQ(info->arity, 3);
  const OperatorDef& def = reg.at(static_cast<size_t>(reg.index_of("op")));
  EXPECT_TRUE(def.is_destructive(0));
  EXPECT_FALSE(def.is_destructive(1));
  EXPECT_TRUE(def.is_destructive(2));
  EXPECT_FALSE(def.is_destructive(7));  // out of range is simply "no"

  reg.add("p", 1, [](OpContext& ctx) { return ctx.take(0); }).pure();
  const OperatorInfo* pinfo = reg.lookup("p");
  ASSERT_NE(pinfo, nullptr);
  EXPECT_TRUE(pinfo->pure);
  EXPECT_FALSE(pinfo->any_destructive());
}

TEST(Registry, RejectsPureDestructiveContradiction) {
  // §2.1: purity promises no argument mutation, so an operator may not be
  // registered as both pure and destructive — in either order.
  OperatorRegistry reg;
  EXPECT_THROW(
      reg.add("pd", 1, [](OpContext& ctx) { return ctx.take(0); })
          .pure()
          .destructive(0),
      std::invalid_argument);
  EXPECT_THROW(
      reg.add("dp", 1, [](OpContext& ctx) { return ctx.take(0); })
          .destructive(0)
          .pure(),
      std::invalid_argument);
}

TEST(Registry, IndexAndLookupAgree) {
  OperatorRegistry reg;
  register_builtin_operators(reg);
  for (const char* name : {"incr", "add", "is_equal", "print", "range"}) {
    const int index = reg.index_of(name);
    ASSERT_GE(index, 0) << name;
    EXPECT_EQ(reg.at(static_cast<size_t>(index)).info.name, name);
    EXPECT_EQ(reg.lookup(name), &reg.at(static_cast<size_t>(index)).info);
  }
  EXPECT_EQ(reg.index_of("nonexistent"), -1);
  EXPECT_EQ(reg.lookup("nonexistent"), nullptr);
}

// --- dcc structure -----------------------------------------------------------------

TEST(DccStructure, CoordinationSourceHasOneForkJoinPerPass) {
  const std::string source = dcc::dcc_coordination_source();
  for (const char* op : {"parse_split", "macro_split", "env_split", "opt_split",
                         "graph_split", "parse_merge", "graph_merge", "opt_inline"}) {
    EXPECT_NE(source.find(op), std::string::npos) << op;
  }
  // Exactly kPieces piece-calls per pass.
  size_t count = 0;
  for (size_t pos = source.find("parse_piece("); pos != std::string::npos;
       pos = source.find("parse_piece(", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, static_cast<size_t>(dcc::kPieces));
}

TEST(DccStructure, PartitionUsesCachedWeights) {
  AstContext ctx;
  std::vector<FuncDecl*> funcs;
  for (int i = 0; i < 8; ++i) {
    FuncDecl* f = ctx.make_func("f" + std::to_string(i), {}, ctx.make_int(i));
    f->weight = static_cast<uint32_t>(100 * (i + 1));  // pretend-heavy
    funcs.push_back(f);
  }
  auto groups = dcc::partition_by_weight(funcs, 4);
  size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, funcs.size());
}

// --- retina version equivalence ------------------------------------------------------

TEST(RetinaVersions, V1AndV2ComputeIdenticalModels) {
  retina::RetinaParams p;
  p.width = p.height = 64;
  p.num_targets = 10;
  p.num_iter = 2;
  OperatorRegistry registry;
  register_builtin_operators(registry);
  retina::register_retina_operators(registry, p);
  Runtime runtime(registry, {.num_workers = 3});
  const auto v1 = retina::delirium_run(p, retina::RetinaVersion::kV1Imbalanced, runtime);
  const auto v2 = retina::delirium_run(p, retina::RetinaVersion::kV2Balanced, runtime);
  EXPECT_EQ(v1.motion, v2.motion);
  EXPECT_EQ(v1.bipolar, v2.bipolar);
  EXPECT_EQ(v1.accum, v2.accum);
}

// --- circuit cones under varying piece counts ---------------------------------------------

TEST(CircuitCones, SequentialConeEvalMatchesFullEvalForAnyPieceCount) {
  circuit::CircuitParams p;
  p.num_gates = 1200;
  p.cycles = 8;
  const auto full = circuit::simulate_sequential(p);
  for (int pieces : {1, 2, 4, 7}) {
    const auto cones = circuit::simulate_sequential_cones(p, pieces);
    EXPECT_EQ(cones.signature, full.signature) << pieces << " pieces";
    EXPECT_EQ(cones.regs, full.regs) << pieces << " pieces";
  }
}

// --- affinity behaviour under replayed costs -------------------------------------------------

TEST(SimAffinity, DataAffinityReducesMigrations) {
  // Five persistent blocks relaxed repeatedly (the bench_affinity shape,
  // shrunk): with a remote penalty, data affinity must migrate blocks
  // strictly less often than no affinity.
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("mk", 1, [](OpContext& ctx) {
    return Value::block(std::vector<float>(1 << 14, static_cast<float>(ctx.arg_int(0))));
  });
  reg.add("touch", 1, [](OpContext& ctx) {
    auto& v = ctx.arg_block_mut<std::vector<float>>(0);
    v[0] += 1.0f;
    return ctx.take(0);
  }).destructive(0);
  std::string source = "main()\n  iterate {\n    t = 0, incr(t)\n";
  for (int g = 0; g < 5; ++g) {
    source += "    g" + std::to_string(g) + " = mk(" + std::to_string(g) + "), touch(g" +
              std::to_string(g) + ")\n";
  }
  source += "  } while is_not_equal(t, 16), result g0\n";
  CompiledProgram program = compile_or_throw(source, reg);
  const CostTable costs = calibrate_costs(reg, program, 2);

  auto moves_with = [&](AffinityMode affinity) {
    SimConfig config;
    config.num_procs = 4;
    config.replay_costs = &costs;
    config.remote_penalty_ns_per_kb = 1000;
    config.affinity = affinity;
    SimRuntime sim(reg, config);
    return sim.run(program).stats.remote_block_moves;
  };
  const uint64_t none = moves_with(AffinityMode::kNone);
  const uint64_t data = moves_with(AffinityMode::kData);
  EXPECT_LT(data, none);
}

}  // namespace
}  // namespace delirium
