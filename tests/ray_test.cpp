// Ray tracer app tests: parallel band rendering must be bitwise identical
// to the sequential render at every worker count.
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/ray/ray.h"
#include "src/delirium.h"

namespace delirium::ray {
namespace {

RayParams small_params() {
  RayParams p;
  p.width = 64;
  p.height = 48;
  p.num_spheres = 6;
  p.bands = 8;
  p.seed = 3;
  return p;
}

TEST(RayMath, NormalizeProducesUnitVectors) {
  const Vec3 v = normalize({3, 4, 0});
  EXPECT_NEAR(std::sqrt(dot(v, v)), 1.0f, 1e-5f);
}

TEST(RayMath, ReflectPreservesLength) {
  const Vec3 v = normalize({1, -1, 0});
  const Vec3 r = reflect(v, {0, 1, 0});
  EXPECT_NEAR(dot(r, r), dot(v, v), 1e-5f);
  EXPECT_GT(r.y, 0);  // bounced upward
}

TEST(RaySequential, DeterministicPerSeed) {
  const RayParams p = small_params();
  EXPECT_EQ(image_checksum(render_sequential(p)), image_checksum(render_sequential(p)));
}

TEST(RaySequential, SceneVariesWithSeed) {
  RayParams p = small_params();
  const double a = image_checksum(render_sequential(p));
  p.seed = 4;
  EXPECT_NE(a, image_checksum(render_sequential(p)));
}

TEST(RaySequential, HitsSomething) {
  // The image must not be all background.
  const RayParams p = small_params();
  const Image img = render_sequential(p);
  const Scene scene = build_scene(p);
  int non_background = 0;
  for (const Vec3& px : img.pix) {
    if (px.x != scene.background.x || px.y != scene.background.y) ++non_background;
  }
  EXPECT_GT(non_background, static_cast<int>(img.pix.size()) / 4);
}

class RayParallel : public ::testing::TestWithParam<int> {};

TEST_P(RayParallel, MatchesSequentialBitwise) {
  const int workers = GetParam();
  const RayParams p = small_params();
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_ray_operators(registry, p);
  CompiledProgram program = compile_or_throw(ray_source(p), registry);
  Runtime runtime(registry, {.num_workers = workers});
  Value result = runtime.run(program);
  const Image& parallel = result.block_as<Image>();
  const Image sequential = render_sequential(p);
  ASSERT_EQ(parallel.pix.size(), sequential.pix.size());
  for (size_t i = 0; i < parallel.pix.size(); ++i) {
    ASSERT_EQ(parallel.pix[i].x, sequential.pix[i].x) << "pixel " << i;
    ASSERT_EQ(parallel.pix[i].y, sequential.pix[i].y) << "pixel " << i;
    ASSERT_EQ(parallel.pix[i].z, sequential.pix[i].z) << "pixel " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, RayParallel, ::testing::Values(1, 2, 4, 8));

TEST(RayParallelProperties, UnevenBandDivisionCoversWholeImage) {
  RayParams p = small_params();
  p.height = 50;  // not divisible by 8 bands
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_ray_operators(registry, p);
  CompiledProgram program = compile_or_throw(ray_source(p), registry);
  Runtime runtime(registry, {.num_workers = 4});
  Value result = runtime.run(program);
  EXPECT_EQ(image_checksum(result.block_as<Image>()),
            image_checksum(render_sequential(p)));
}

TEST(RayBvh, MatchesBruteForceBitwise) {
  RayParams p = small_params();
  p.num_spheres = 10;
  p.num_pyramids = 6;
  RayParams brute = p;
  brute.use_bvh = false;
  const Image with_bvh = render_sequential(p);
  const Image without = render_sequential(brute);
  ASSERT_EQ(with_bvh.pix.size(), without.pix.size());
  for (size_t i = 0; i < with_bvh.pix.size(); ++i) {
    ASSERT_EQ(with_bvh.pix[i].x, without.pix[i].x) << "pixel " << i;
    ASSERT_EQ(with_bvh.pix[i].y, without.pix[i].y) << "pixel " << i;
    ASSERT_EQ(with_bvh.pix[i].z, without.pix[i].z) << "pixel " << i;
  }
}

TEST(RayBvh, CoversEveryPrimitiveExactlyOnce) {
  RayParams p = small_params();
  p.num_pyramids = 5;
  const Scene scene = build_scene(p);
  ASSERT_GE(scene.bvh.root, 0);
  std::vector<int> seen(scene.spheres.size() + scene.triangles.size(), 0);
  for (const BvhNode& node : scene.bvh.nodes) {
    for (int i = node.first_prim; i < node.first_prim + node.prim_count; ++i) {
      ++seen[static_cast<size_t>(scene.bvh.prims[i])];
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << "primitive " << i;
}

TEST(RayBvh, TrianglesAreVisible) {
  // A scene of pyramids only must not render as pure background.
  RayParams p = small_params();
  p.num_spheres = 0;
  p.num_pyramids = 8;
  const Image img = render_sequential(p);
  const Scene scene = build_scene(p);
  int non_background = 0;
  for (const Vec3& px : img.pix) {
    if (px.x != scene.background.x) ++non_background;
  }
  EXPECT_GT(non_background, 100);
}

TEST(RayTriangle, MollerTrumboreBasics) {
  const Triangle tri{{0, 0, 5}, {2, 0, 5}, {1, 2, 5}, {}};
  float t = 0;
  // Straight at the centroid: hit at distance 5.
  EXPECT_TRUE(intersect_triangle(tri, {1, 0.5f, 0}, {0, 0, 1}, &t));
  EXPECT_NEAR(t, 5.0f, 1e-4f);
  // Outside the triangle: miss.
  EXPECT_FALSE(intersect_triangle(tri, {5, 5, 0}, {0, 0, 1}, &t));
  // Parallel to the plane: miss.
  EXPECT_FALSE(intersect_triangle(tri, {1, 0.5f, 0}, {1, 0, 0}, &t));
  // Behind the origin: miss.
  EXPECT_FALSE(intersect_triangle(tri, {1, 0.5f, 10}, {0, 0, 1}, &t));
}

TEST(RaySupersampling, SmoothsEdgesAndStaysParallelSafe) {
  RayParams p = small_params();
  p.samples_per_axis = 2;
  const Image aa = render_sequential(p);
  RayParams plain = p;
  plain.samples_per_axis = 1;
  const Image hard = render_sequential(plain);
  EXPECT_NE(image_checksum(aa), image_checksum(hard));

  // The band-parallel version must match the supersampled sequential
  // render bitwise too.
  OperatorRegistry registry;
  register_builtin_operators(registry);
  register_ray_operators(registry, p);
  CompiledProgram program = compile_or_throw(ray_source(p), registry);
  Runtime runtime(registry, {.num_workers = 4});
  Value result = runtime.run(program);
  EXPECT_EQ(image_checksum(result.block_as<Image>()), image_checksum(aa));
}

TEST(RayParallelProperties, WritesPpm) {
  const RayParams p = small_params();
  const Image img = render_sequential(p);
  const std::string path = ::testing::TempDir() + "/delirium_ray_test.ppm";
  ASSERT_TRUE(write_ppm(img, path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fread(magic, 1, 2, f), 2u);
  std::fclose(f);
  EXPECT_EQ(std::string(magic), "P6");
}

}  // namespace
}  // namespace delirium::ray
