// Compile-time contract of the ExecConfig split: every knob shared by
// the threaded runtime and the simulator must live in ExecConfig — and
// *only* there. The member-pointer asserts below fail if a derived
// config ever re-declares (shadows) a shared knob: a shadowing member
// would make `&RuntimeConfig::knob` a `RuntimeConfig::*` pointer rather
// than the inherited `ExecConfig::*`, silently splitting one knob into
// two for code (like ExecutorFixture and apply_exec_env_overrides) that
// reads the base slice.
//
// Deliberately NOT shared, and so absent from the list: the watchdog
// budget. The threaded runtime's watchdog is *wall-clock milliseconds*
// (RuntimeConfig::watchdog_budget_ms) while the simulator's is
// *virtual nanoseconds* (SimConfig::watchdog_budget_ns); collapsing
// them into one field would silently conflate the two clocks.
#include <gtest/gtest.h>

#include <type_traits>

#include "src/delirium.h"
#include "src/runtime/sim.h"

namespace delirium {
namespace {

static_assert(std::is_base_of_v<ExecConfig, RuntimeConfig>,
              "RuntimeConfig must derive from ExecConfig");
static_assert(std::is_base_of_v<ExecConfig, SimConfig>,
              "SimConfig must derive from ExecConfig");

// Each shared knob exists exactly once, in the base: taking its address
// through either derived config yields an ExecConfig member pointer.
#define DELIRIUM_EXPECT_SHARED_KNOB(type, member)                                        \
  static_assert(std::is_same_v<decltype(&RuntimeConfig::member), type ExecConfig::*>,    \
                #member " is shadowed in RuntimeConfig — it must live in ExecConfig");   \
  static_assert(std::is_same_v<decltype(&SimConfig::member), type ExecConfig::*>,        \
                #member " is shadowed in SimConfig — it must live in ExecConfig")

DELIRIUM_EXPECT_SHARED_KNOB(bool, enable_node_timing);
DELIRIUM_EXPECT_SHARED_KNOB(bool, use_priorities);
DELIRIUM_EXPECT_SHARED_KNOB(bool, cost_hints);
DELIRIUM_EXPECT_SHARED_KNOB(bool, enable_tail_calls);
DELIRIUM_EXPECT_SHARED_KNOB(AffinityMode, affinity);
DELIRIUM_EXPECT_SHARED_KNOB(int64_t, remote_penalty_ns_per_kb);
DELIRIUM_EXPECT_SHARED_KNOB(MemoryTopology, topology);
DELIRIUM_EXPECT_SHARED_KNOB(bool, locality_scheduling);
DELIRIUM_EXPECT_SHARED_KNOB(bool, unique_fastpath);
DELIRIUM_EXPECT_SHARED_KNOB(int, max_retries);
DELIRIUM_EXPECT_SHARED_KNOB(int64_t, retry_backoff_ns);
DELIRIUM_EXPECT_SHARED_KNOB(bool, fail_fast);
DELIRIUM_EXPECT_SHARED_KNOB(bool, enable_tracing);
DELIRIUM_EXPECT_SHARED_KNOB(size_t, trace_capacity);
DELIRIUM_EXPECT_SHARED_KNOB(bool, activation_pool);

#undef DELIRIUM_EXPECT_SHARED_KNOB

// And the executor-specific knobs stay in their own config — each clock
// keeps its unit in its name.
static_assert(std::is_same_v<decltype(&RuntimeConfig::watchdog_budget_ms),
                             int64_t RuntimeConfig::*>);
static_assert(std::is_same_v<decltype(&SimConfig::watchdog_budget_ns),
                             int64_t SimConfig::*>);
static_assert(std::is_same_v<decltype(&RuntimeConfig::num_workers), int RuntimeConfig::*>);
static_assert(std::is_same_v<decltype(&SimConfig::num_procs), int SimConfig::*>);

TEST(ExecConfig, BaseSliceAssignmentCarriesEverySharedKnobToBothConfigs) {
  // The fixture and the tools configure a single ExecConfig and assign
  // it into both derived configs via the base slice; flipping every knob
  // away from its default and reading it back through each derived
  // config proves the slice covers the whole shared surface.
  ExecConfig shared;
  shared.enable_node_timing = !shared.enable_node_timing;
  shared.use_priorities = !shared.use_priorities;
  shared.cost_hints = !shared.cost_hints;
  shared.enable_tail_calls = !shared.enable_tail_calls;
  shared.affinity = AffinityMode::kData;
  shared.remote_penalty_ns_per_kb = 777;
  shared.topology = MemoryTopology::numa2();
  shared.locality_scheduling = !shared.locality_scheduling;
  shared.unique_fastpath = !shared.unique_fastpath;
  shared.max_retries = 5;
  shared.retry_backoff_ns = 12345;
  shared.fail_fast = !shared.fail_fast;
  shared.enable_tracing = !shared.enable_tracing;
  shared.trace_capacity = 4096;
  shared.activation_pool = !shared.activation_pool;

  RuntimeConfig rconfig;
  static_cast<ExecConfig&>(rconfig) = shared;
  SimConfig sconfig;
  static_cast<ExecConfig&>(sconfig) = shared;
  for (const ExecConfig* config :
       {static_cast<const ExecConfig*>(&rconfig), static_cast<const ExecConfig*>(&sconfig)}) {
    EXPECT_EQ(config->enable_node_timing, shared.enable_node_timing);
    EXPECT_EQ(config->use_priorities, shared.use_priorities);
    EXPECT_EQ(config->cost_hints, shared.cost_hints);
    EXPECT_EQ(config->enable_tail_calls, shared.enable_tail_calls);
    EXPECT_EQ(config->affinity, shared.affinity);
    EXPECT_EQ(config->remote_penalty_ns_per_kb, shared.remote_penalty_ns_per_kb);
    EXPECT_EQ(config->topology, shared.topology);
    EXPECT_EQ(config->locality_scheduling, shared.locality_scheduling);
    EXPECT_EQ(config->unique_fastpath, shared.unique_fastpath);
    EXPECT_EQ(config->max_retries, shared.max_retries);
    EXPECT_EQ(config->retry_backoff_ns, shared.retry_backoff_ns);
    EXPECT_EQ(config->fail_fast, shared.fail_fast);
    EXPECT_EQ(config->enable_tracing, shared.enable_tracing);
    EXPECT_EQ(config->trace_capacity, shared.trace_capacity);
    EXPECT_EQ(config->activation_pool, shared.activation_pool);
  }
}

}  // namespace
}  // namespace delirium
