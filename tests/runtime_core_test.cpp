// End-to-end tests of the core language constructs: atomic values,
// multiple values, let bindings, conditionals, and application. Every
// evaluation runs through the ExecutorFixture matrix (both threaded
// schedulers × {1, 2, 8} workers + the virtual-time simulator), so each
// core construct is checked for cross-executor equivalence too.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace delirium {
namespace {

Value eval(const std::string& source) { return testing::eval_everywhere(source); }
int64_t eval_int(const std::string& source) { return testing::eval_int_everywhere(source); }

TEST(RuntimeCore, ReturnsIntegerLiteral) {
  EXPECT_EQ(eval_int("main() 42"), 42);
}

TEST(RuntimeCore, ReturnsNegativeInteger) {
  EXPECT_EQ(eval_int("main() -17"), -17);
}

TEST(RuntimeCore, ReturnsFloatLiteral) {
  EXPECT_DOUBLE_EQ(eval("main() 2.5").as_float(), 2.5);
}

TEST(RuntimeCore, ReturnsStringLiteral) {
  EXPECT_EQ(eval("main() \"hello\"").as_string(), "hello");
}

TEST(RuntimeCore, ReturnsNull) {
  EXPECT_TRUE(eval("main() NULL").is_null());
}

TEST(RuntimeCore, AppliesBuiltinOperator) {
  EXPECT_EQ(eval_int("main() add(40, 2)"), 42);
}

TEST(RuntimeCore, NestedApplication) {
  EXPECT_EQ(eval_int("main() mul(add(1, 2), sub(10, 3))"), 21);
}

TEST(RuntimeCore, LetBindingSingleValue) {
  EXPECT_EQ(eval_int("main() let x = 5 in add(x, x)"), 10);
}

TEST(RuntimeCore, LetBindingsAreSequential) {
  EXPECT_EQ(eval_int(R"(
    main()
      let a = 3
          b = add(a, 4)
          c = mul(a, b)
      in c
  )"),
            21);
}

TEST(RuntimeCore, LetShadowingInNestedScopes) {
  EXPECT_EQ(eval_int(R"(
    main()
      let x = 1
      in let x = add(x, 10)
         in x
  )"),
            11);
}

TEST(RuntimeCore, TupleConstructionAndDecomposition) {
  EXPECT_EQ(eval_int(R"(
    main()
      let t = <1, 2, 3>
          <a, b, c> = t
      in add(a, add(b, c))
  )"),
            6);
}

TEST(RuntimeCore, OperatorReturningTuple) {
  // An operator returning a multiple-value package, decomposed by the
  // coordination code (the paper's target_split pattern).
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("split3", 1, [](OpContext& ctx) {
    const int64_t v = ctx.arg_int(0);
    return Value::tuple({Value::of(v), Value::of(v * 10), Value::of(v * 100)});
  }).pure();
  testing::ExecutorFixture fixture(reg);
  const testing::ExecutorOutcome out = fixture.expect_equivalent(R"(
    main()
      let <a, b, c> = split3(7)
      in add(a, add(b, c))
  )");
  EXPECT_EQ(out.value_or_rethrow().as_int(), 777);
}

TEST(RuntimeCore, ConditionalTrueBranch) {
  EXPECT_EQ(eval_int("main() if 1 then 10 else 20"), 10);
}

TEST(RuntimeCore, ConditionalFalseBranch) {
  EXPECT_EQ(eval_int("main() if 0 then 10 else 20"), 20);
}

TEST(RuntimeCore, NullIsFalsy) {
  EXPECT_EQ(eval_int("main() if NULL then 1 else 2"), 2);
}

TEST(RuntimeCore, ConditionalWithComputedCondition) {
  EXPECT_EQ(eval_int("main() if less_than(3, 5) then 1 else 0"), 1);
}

TEST(RuntimeCore, ConditionalBranchesSeeEnclosingBindings) {
  EXPECT_EQ(eval_int(R"(
    main()
      let x = 6
          y = 7
      in if greater_than(x, y) then x else y
  )"),
            7);
}

TEST(RuntimeCore, UntakenBranchIsNotExecuted) {
  // The untaken arm contains a division by zero; because branches expand
  // lazily through closures, it must never run.
  EXPECT_EQ(eval_int("main() if 1 then 5 else div(1, 0)"), 5);
}

TEST(RuntimeCore, CallsUserFunction) {
  EXPECT_EQ(eval_int(R"(
    double(x) add(x, x)
    main() double(21)
  )"),
            42);
}

TEST(RuntimeCore, FunctionCallsAreIndependent) {
  EXPECT_EQ(eval_int(R"(
    square(x) mul(x, x)
    main() add(square(3), square(4))
  )"),
            25);
}

TEST(RuntimeCore, ForkJoinFromSection2) {
  // The fork/join example of §2.1, with convolve standing in as an
  // operator. All four convolve calls may run in parallel; term_fn joins.
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("init_fn", 0, [](OpContext&) { return Value::of(int64_t{100}); }).pure();
  reg.add("convolve", 2, [](OpContext& ctx) {
    return Value::of(ctx.arg_int(0) + ctx.arg_int(1));
  }).pure();
  reg.add("term_fn", 4, [](OpContext& ctx) {
    return Value::of(ctx.arg_int(0) + ctx.arg_int(1) + ctx.arg_int(2) + ctx.arg_int(3));
  }).pure();
  testing::ExecutorFixture fixture(reg);
  const testing::ExecutorOutcome out = fixture.expect_equivalent(R"(
    main()
      let a_start = init_fn()
          a = convolve(a_start, 0)
          b = convolve(a_start, 1)
          c = convolve(a_start, 2)
          d = convolve(a_start, 3)
      in term_fn(a, b, c, d)
  )");
  EXPECT_EQ(out.value_or_rethrow().as_int(), 406);
}

TEST(RuntimeCore, RunFunctionByName) {
  auto reg = testing::builtin_registry();
  // Optimization off: otherwise helper is inlined into main and removed
  // as dead, so it would not be callable by name.
  CompileOptions copts;
  copts.optimize = false;
  CompiledProgram program = compile_or_throw(R"(
    helper(x, y) mul(x, y)
    main() helper(6, 7)
  )",
                                             *reg, copts);
  Runtime runtime(*reg, {.num_workers = 2});
  EXPECT_EQ(runtime.run(program).as_int(), 42);
  EXPECT_EQ(runtime
                .run_function(program, "helper", {Value::of(int64_t{3}), Value::of(int64_t{5})})
                .as_int(),
            15);
}

TEST(RuntimeCore, StringOperations) {
  EXPECT_EQ(eval("main() concat(\"ab\", \"cd\")").as_string(), "abcd");
  EXPECT_EQ(eval_int("main() str_len(\"hello\")"), 5);
}

TEST(RuntimeCore, DeterministicErrorOnDivisionByZero) {
  EXPECT_THROW(eval("main() div(1, 0)"), RuntimeError);
}

TEST(RuntimeCore, OperatorExceptionPropagatesToCaller) {
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("boom", 0, [](OpContext&) -> Value { throw RuntimeError("boom happened"); });
  testing::ExecutorFixture fixture(reg);
  try {
    // The fixture checks the report is byte-identical everywhere; the
    // rethrown reference error carries the structured fault.
    fixture.expect_equivalent("main() boom()").value_or_rethrow();
    FAIL() << "expected RuntimeError";
  } catch (const FaultError& e) {
    // The original message survives, wrapped in deterministic provenance
    // (operator, template, node, coordination stack).
    EXPECT_NE(std::string(e.what()).find("boom happened"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("operator 'boom' faulted"), std::string::npos);
    EXPECT_EQ(e.fault().op, "boom");
    EXPECT_EQ(e.fault().tmpl, "main");
    EXPECT_EQ(e.fault().message, "boom happened");
  }
}

TEST(RuntimeCore, RuntimeIsReusableAcrossRuns) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw("main() add(1, 2)", *reg);
  Runtime runtime(*reg, {.num_workers = 3});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(runtime.run(program).as_int(), 3);
  }
}

}  // namespace
}  // namespace delirium
