// Runtime stress and failure-injection tests: wide fan-out, deep
// non-tail recursion, error propagation under parallelism, registry
// misuse, and block-contention (copy-on-write) semantics under load.
#include <gtest/gtest.h>

#include <atomic>

#include "tests/test_util.h"

namespace delirium {
namespace {

TEST(Stress, WideFanOut) {
  // 256 parallel leaf calls joined by a tree of adds.
  OperatorRegistry reg;
  register_builtin_operators(reg);
  std::string source = "leaf(x) incr(x)\nmain()\n  let\n";
  for (int i = 0; i < 256; ++i) {
    source += "    x" + std::to_string(i) + " = leaf(" + std::to_string(i) + ")\n";
  }
  source += "  in ";
  // Sum via a fold expression: add(add(...)...) nested left.
  std::string sum = "x0";
  for (int i = 1; i < 256; ++i) sum = "add(" + sum + ", x" + std::to_string(i) + ")";
  source += sum + "\n";
  CompileOptions no_opt;
  no_opt.optimize = false;
  CompiledProgram program = compile_or_throw(source, reg, no_opt);
  Runtime runtime(reg, {.num_workers = 4});
  // sum of (i+1) for i in 0..255 = 256*257/2
  EXPECT_EQ(runtime.run(program).as_int(), 256 * 257 / 2);
}

TEST(Stress, DeepNonTailRecursion) {
  // 20k-deep non-tail recursion: activations pile up but complete.
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(R"(
depth(n) if is_equal(n, 0) then 0 else incr(depth(decr(n)))
main() depth(20000)
)",
                                             *reg);
  Runtime runtime(*reg, {.num_workers = 2});
  EXPECT_EQ(runtime.run(program).as_int(), 20000);
  EXPECT_GE(runtime.last_stats().activations_created, 20000u);
}

TEST(Stress, ErrorInOneBranchCancelsCleanly) {
  OperatorRegistry reg;
  register_builtin_operators(reg);
  std::atomic<int> executed{0};
  reg.add("slow_ok", 1, [&executed](OpContext& ctx) {
    executed.fetch_add(1);
    return ctx.take(0);
  });
  reg.add("fail_fast", 1, [](OpContext&) -> Value {
    throw RuntimeError("injected failure");
  });
  reg.add("join", 4, [](OpContext& ctx) { return ctx.take(0); });
  CompiledProgram program = compile_or_throw(R"(
main()
  let a = slow_ok(1)
      b = fail_fast(2)
      c = slow_ok(3)
      d = slow_ok(4)
  in join(a, b, c, d)
)",
                                             reg);
  Runtime runtime(reg, {.num_workers = 4});
  EXPECT_THROW(runtime.run(program), RuntimeError);
  // The runtime must remain usable after a failed run.
  CompiledProgram ok = compile_or_throw("main() add(1, 2)", reg);
  EXPECT_EQ(runtime.run(ok).as_int(), 3);
}

TEST(Stress, RepeatedRunsLeakNoActivations) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw(R"(
fib(n) if less_than(n, 2) then n else add(fib(sub(n, 1)), fib(sub(n, 2)))
main() fib(12)
)",
                                             *reg);
  Runtime runtime(*reg, {.num_workers = 4});
  uint64_t first_created = 0;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(runtime.run(program).as_int(), 144);
    if (i == 0) {
      first_created = runtime.last_stats().activations_created;
    } else {
      // Per-run counters, not cumulative: constant per run.
      EXPECT_EQ(runtime.last_stats().activations_created, first_created);
    }
  }
}

TEST(Stress, SharedBlockContentionCopiesExactlyWhenNeeded) {
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("make", 0, [](OpContext&) {
    return Value::block(std::vector<int64_t>{0, 0, 0, 0});
  });
  reg.add("poke", 2, [](OpContext& ctx) {
    auto& v = ctx.arg_block_mut<std::vector<int64_t>>(0);
    v[static_cast<size_t>(ctx.arg_int(1)) % v.size()] += 1;
    return ctx.take(0);
  }).destructive(0);
  reg.add("read_sum", 1, [](OpContext& ctx) {
    int64_t total = 0;
    for (int64_t x : ctx.arg_block<std::vector<int64_t>>(0)) total += x;
    return Value::of(total);
  }).pure();

  // Four pokes of the SAME block in parallel: each must see its own copy
  // (the block is shared), so each result sums to exactly 1.
  CompiledProgram program = compile_or_throw(R"(
main()
  let b = make()
      p0 = read_sum(poke(b, 0))
      p1 = read_sum(poke(b, 1))
      p2 = read_sum(poke(b, 2))
      p3 = read_sum(poke(b, 3))
  in add(add(p0, p1), add(p2, p3))
)",
                                             reg);
  for (int workers : {1, 4}) {
    Runtime runtime(reg, {.num_workers = workers});
    EXPECT_EQ(runtime.run(program).as_int(), 4) << workers;
    // At least 3 copies: one poke may win the sole original.
    EXPECT_GE(runtime.last_stats().cow_copies, 3u) << workers;
  }
}

TEST(Stress, OperatorRegisteredAfterRuntimeConstructionRunsWithoutAffinity) {
  // Regression: op_last_worker_ is sized from the registry at Runtime
  // construction. An operator registered afterwards used to index past
  // the end of that table under kOperator affinity; it must instead
  // fall back to "no preference" and still compute correctly.
  OperatorRegistry reg;
  register_builtin_operators(reg);
  RuntimeConfig config;
  config.num_workers = 2;
  config.affinity = AffinityMode::kOperator;
  for (const SchedulerKind scheduler :
       {SchedulerKind::kGlobalLock, SchedulerKind::kWorkStealing}) {
    config.scheduler = scheduler;
    Runtime runtime(reg, config);  // affinity table sized here
    const std::string name =
        scheduler == SchedulerKind::kGlobalLock ? "late_gl" : "late_ws";
    reg.add(name, 1, [](OpContext& ctx) { return Value::of(ctx.arg_int(0) * 3); })
        .pure();
    CompiledProgram program =
        compile_or_throw("main() " + name + "(add(" + name + "(5), 2))", reg);
    EXPECT_EQ(runtime.run(program).as_int(), 51);
  }
}

TEST(Registry, RejectsDuplicateOperators) {
  OperatorRegistry reg;
  reg.add("dup", 0, [](OpContext&) { return Value::null(); });
  EXPECT_THROW(reg.add("dup", 1, [](OpContext&) { return Value::null(); }),
               std::invalid_argument);
}

TEST(Registry, UndeclaredDestructiveAccessIsRejected) {
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("sneaky", 1, [](OpContext& ctx) -> Value {
    // Did not declare .destructive(0): must throw.
    ctx.arg_block_mut<std::vector<int>>(0)[0] = 1;
    return ctx.take(0);
  });
  reg.add("mk", 0, [](OpContext&) { return Value::block(std::vector<int>{0}); });
  CompiledProgram program = compile_or_throw("main() sneaky(mk())", reg);
  Runtime runtime(reg, {.num_workers = 1});
  try {
    runtime.run(program);
    FAIL();
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("did not declare destructive"), std::string::npos);
  }
}

TEST(Registry, ArgumentIndexOutOfRange) {
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("overreach", 1, [](OpContext& ctx) { return ctx.take(5); });
  CompiledProgram program = compile_or_throw("main() overreach(1)", reg);
  Runtime runtime(reg, {.num_workers = 1});
  EXPECT_THROW(runtime.run(program), RuntimeError);
}

TEST(Stress, ManyWorkersOnTinyProgram) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw("main() 1", *reg);
  Runtime runtime(*reg, {.num_workers = 16});
  for (int i = 0; i < 50; ++i) EXPECT_EQ(runtime.run(program).as_int(), 1);
}

TEST(Stress, DecomposeArityMismatchIsRuntimeError) {
  OperatorRegistry reg;
  register_builtin_operators(reg);
  reg.add("pair", 0, [](OpContext&) {
    return Value::tuple({Value::of(int64_t{1}), Value::of(int64_t{2})});
  }).pure();
  // Optimization off: the optimizer would (legally) delete the unused
  // extractions, erasing the error with them.
  CompileOptions no_opt;
  no_opt.optimize = false;
  CompiledProgram program =
      compile_or_throw("main() let <a, b, c> = pair() in a", reg, no_opt);
  Runtime runtime(reg, {.num_workers = 2});
  try {
    runtime.run(program);
    FAIL();
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("element 2"), std::string::npos);
  }
}

TEST(Stress, DecomposingANonPackageIsRuntimeError) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw("main() let <a, b> = 5 in a", *reg);
  Runtime runtime(*reg, {.num_workers = 1});
  EXPECT_THROW(runtime.run(program), RuntimeError);
}

}  // namespace
}  // namespace delirium
