// Graph-level optimizer tests: dead nodes, unreachable templates, slot
// compaction, and the semantics-preservation property.
#include <gtest/gtest.h>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"

namespace delirium {
namespace {

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    reg.add("effectful", 1, [](OpContext& ctx) { return ctx.take(0); });
    return reg;
  }();
  return r;
}

/// Compile without AST optimization, then apply only the graph pass.
std::pair<CompiledProgram, GraphOptStats> graph_optimized(const std::string& source) {
  CompileOptions options;
  options.optimize = false;
  CompiledProgram program = compile_or_throw(source, registry(), options);
  GraphOptStats stats = optimize_graphs(program, registry());
  return {std::move(program), stats};
}

TEST(GraphOpt, RemovesUnusedPureNodes) {
  // With AST optimization off, the unused binding becomes dead nodes.
  auto [program, stats] = graph_optimized("main() let unused = add(1, 2) in 7");
  EXPECT_GE(stats.dead_nodes_removed, 3u);  // two consts + the add
  EXPECT_EQ(validate_graph(program), "");
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 7);
}

TEST(GraphOpt, KeepsEffectfulNodes) {
  auto [program, stats] = graph_optimized("main() let unused = effectful(5) in 7");
  bool found = false;
  for (const Node& n : program.entry_template().nodes) {
    found = found || n.op_name == "effectful";
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(validate_graph(program), "");
}

TEST(GraphOpt, ReclaimsSlots) {
  auto [program, stats] = graph_optimized(
      "main() let a = add(1, 2) b = mul(a, a) in 7");
  EXPECT_GT(stats.slots_reclaimed, 0u);
  EXPECT_EQ(validate_graph(program), "");
}

TEST(GraphOpt, PrunesUnreachableTemplates) {
  // AST-level DCE is off, so the dead branch templates of a folded
  // conditional stay; here we craft garbage: a local function never used.
  auto [program, stats] = graph_optimized(R"(
main()
  let f(x) if x then 1 else 2
  in 9
)");
  // f's closure is dead (pure MakeClosure with no consumers); once it is
  // removed, f's template and its two branch templates are unreachable.
  EXPECT_GE(stats.templates_pruned, 3u);
  EXPECT_EQ(validate_graph(program), "");
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 9);
}

TEST(GraphOpt, NamedTemplatesAreNeverPruned) {
  auto [program, stats] = graph_optimized("dead() 1\nmain() 2");
  EXPECT_NE(program.find("dead"), nullptr);  // callable via run_function
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run_function(program, "dead", {}).as_int(), 1);
}

TEST(GraphOpt, IdempotentOnCleanGraphs) {
  CompiledProgram program = compile_or_throw("main() add(1, 2)", registry());
  const size_t nodes = program.total_nodes();
  GraphOptStats stats = optimize_graphs(program, registry());
  EXPECT_EQ(stats.dead_nodes_removed, 0u);
  EXPECT_EQ(program.total_nodes(), nodes);
}

TEST(GraphOpt, ParamsSurviveEvenWhenUnused) {
  auto [program, stats] = graph_optimized("f(a, b) a\nmain() f(1, 2)");
  const Template* f = program.find("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->param_nodes.size(), 2u);  // activation interface unchanged
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 1);
}

class GraphOptProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphOptProperty, PreservesValuesOnGeneratedPrograms) {
  dcc::GenParams params;
  params.num_functions = 12;
  params.body_size = 25;
  params.seed = GetParam();
  const std::string source = dcc::generate_program(params);

  CompileOptions no_opt;
  no_opt.optimize = false;
  CompiledProgram plain = compile_or_throw(source, registry(), no_opt);

  CompiledProgram pruned = compile_or_throw(source, registry(), no_opt);
  optimize_graphs(pruned, registry());
  EXPECT_EQ(validate_graph(pruned), "") << "seed " << GetParam();
  EXPECT_LE(pruned.total_nodes(), plain.total_nodes());

  Runtime runtime(registry(), {.num_workers = 2});
  EXPECT_EQ(runtime.run(plain).as_int(), runtime.run(pruned).as_int())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphOptProperty,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48, 49, 50));

}  // namespace
}  // namespace delirium
