// Graph-level optimizer tests: dead nodes, unreachable templates, slot
// compaction, and the semantics-preservation property.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "src/apps/dcc/program_gen.h"
#include "src/delirium.h"
#include "tests/test_util.h"

namespace delirium {
namespace {

OperatorRegistry& registry() {
  static OperatorRegistry r = [] {
    OperatorRegistry reg;
    register_builtin_operators(reg);
    reg.add("effectful", 1, [](OpContext& ctx) { return ctx.take(0); });
    return reg;
  }();
  return r;
}

/// Compile without AST optimization, then apply only the graph pass.
std::pair<CompiledProgram, GraphOptStats> graph_optimized(const std::string& source) {
  CompileOptions options;
  options.optimize = false;
  CompiledProgram program = compile_or_throw(source, registry(), options);
  GraphOptStats stats = optimize_graphs(program, registry());
  return {std::move(program), stats};
}

TEST(GraphOpt, RemovesUnusedPureNodes) {
  // With AST optimization off, the unused binding becomes dead nodes.
  auto [program, stats] = graph_optimized("main() let unused = add(1, 2) in 7");
  EXPECT_GE(stats.dead_nodes_removed, 3u);  // two consts + the add
  EXPECT_EQ(validate_graph(program), "");
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 7);
}

TEST(GraphOpt, KeepsEffectfulNodes) {
  auto [program, stats] = graph_optimized("main() let unused = effectful(5) in 7");
  bool found = false;
  for (const Node& n : program.entry_template().nodes) {
    found = found || n.op_name == "effectful";
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(validate_graph(program), "");
}

TEST(GraphOpt, ReclaimsSlots) {
  auto [program, stats] = graph_optimized(
      "main() let a = add(1, 2) b = mul(a, a) in 7");
  EXPECT_GT(stats.slots_reclaimed, 0u);
  EXPECT_EQ(validate_graph(program), "");
}

TEST(GraphOpt, PrunesUnreachableTemplates) {
  // AST-level DCE is off, so the dead branch templates of a folded
  // conditional stay; here we craft garbage: a local function never used.
  auto [program, stats] = graph_optimized(R"(
main()
  let f(x) if x then 1 else 2
  in 9
)");
  // f's closure is dead (pure MakeClosure with no consumers); once it is
  // removed, f's template and its two branch templates are unreachable.
  EXPECT_GE(stats.templates_pruned, 3u);
  EXPECT_EQ(validate_graph(program), "");
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 9);
}

TEST(GraphOpt, NamedTemplatesAreNeverPruned) {
  auto [program, stats] = graph_optimized("dead() 1\nmain() 2");
  EXPECT_NE(program.find("dead"), nullptr);  // callable via run_function
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run_function(program, "dead", {}).as_int(), 1);
}

TEST(GraphOpt, IdempotentOnCleanGraphs) {
  CompiledProgram program = compile_or_throw("main() add(1, 2)", registry());
  const size_t nodes = program.total_nodes();
  GraphOptStats stats = optimize_graphs(program, registry());
  EXPECT_EQ(stats.dead_nodes_removed, 0u);
  EXPECT_EQ(program.total_nodes(), nodes);
}

TEST(GraphOpt, ParamsSurviveEvenWhenUnused) {
  auto [program, stats] = graph_optimized("f(a, b) a\nmain() f(1, 2)");
  const Template* f = program.find("f");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->param_nodes.size(), 2u);  // activation interface unchanged
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 1);
}

TEST(GraphOpt, FoldsConstantReturningCalls) {
  // fortytwo() is pure and delivers a constant: the facts engine folds
  // the kCall in main to kConst 42, then sweeps the orphaned callee body.
  auto [program, stats] = graph_optimized("fortytwo() mul(6, 7)\nmain() add(fortytwo(), 1)");
  EXPECT_GT(stats.consts_folded, 0u);
  bool has_call = false;
  for (const Node& n : program.entry_template().nodes) {
    has_call = has_call || n.kind == NodeKind::kCall;
  }
  EXPECT_FALSE(has_call);
  EXPECT_EQ(validate_graph(program), "");
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 43);
}

TEST(GraphOpt, FoldKillSwitchPreservesTheCall) {
  testing::ScopedEnv env({"DELIRIUM_GRAPH_FACTS", "DELIRIUM_FACTS_FOLD"});
  env.set("DELIRIUM_FACTS_FOLD", "0");
  auto [program, stats] = graph_optimized("fortytwo() mul(6, 7)\nmain() add(fortytwo(), 1)");
  EXPECT_EQ(stats.consts_folded, 0u);
  bool has_call = false;
  for (const Node& n : program.entry_template().nodes) {
    has_call = has_call || n.kind == NodeKind::kCall;
  }
  EXPECT_TRUE(has_call);
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 43);
}

/// Exhaustive textual dump of a program: every field of every node and
/// template, so byte-equality of two dumps is structural equality.
std::string dump_program(const CompiledProgram& program) {
  std::ostringstream out;
  out << "entry " << program.entry << "\n";
  std::vector<std::pair<std::string, uint32_t>> names(program.by_name.begin(),
                                                      program.by_name.end());
  std::sort(names.begin(), names.end());
  for (const auto& [name, index] : names) out << "name " << name << " -> " << index << "\n";
  for (size_t t = 0; t < program.templates.size(); ++t) {
    const Template& tp = *program.templates[t];
    out << "template " << t << " '" << tp.name << "' params=" << tp.num_params
        << " captures=" << tp.num_captures << " return=" << tp.return_node
        << " slots=" << tp.value_slots << " recursive=" << tp.recursive << " pnodes=[";
    for (uint32_t p : tp.param_nodes) out << p << ",";
    out << "]\n";
    for (size_t i = 0; i < tp.nodes.size(); ++i) {
      const Node& n = tp.nodes[i];
      out << "  node " << i << " kind=" << static_cast<int>(n.kind)
          << " pri=" << static_cast<int>(n.priority) << " tail=" << n.is_tail
          << " crit=" << n.on_critical_path << " inputs=" << n.num_inputs
          << " ioff=" << n.input_offset << " lit=";
      std::visit(
          [&out](const auto& v) {
            if constexpr (std::is_same_v<std::decay_t<decltype(v)>, std::monostate>) {
              out << "_";
            } else {
              out << v;
            }
          },
          n.literal);
      out << " pidx=" << n.param_index << " opidx=" << n.op_index << " op='" << n.op_name
          << "' tidx=" << n.tuple_index << " target=" << n.target_template << " range=["
          << n.range.begin.offset << "," << n.range.end.offset << ") label='"
          << n.debug_label << "' consumers=[";
      for (const PortRef& c : n.consumers) out << c.node << ":" << c.port << ",";
      out << "] classes=[";
      for (const ConsumeClass c : n.input_classes) out << static_cast<int>(c) << ",";
      out << "] fused=[";
      for (const FusedMember& m : n.fused) {
        out << m.op_name << "#" << m.op_index << "@" << m.orig_node << "(";
        for (uint32_t s : m.inputs) out << s << ",";
        out << "),";
      }
      out << "]\n";
    }
  }
  return out.str();
}

TEST(GraphOpt, SecondOptimizationIsByteIdenticalNoOp) {
  // The fixpoint loop must leave nothing on the table: re-optimizing an
  // optimized program changes no field of any node or template.
  for (const char* source :
       {"fortytwo() mul(6, 7)\nmain() add(fortytwo(), 1)",
        "drop(a, b) a\nmain() let c = add(1, 2) f(x) drop(x, c) in add(f(3), f(4))",
        "main() let unused = effectful(5) in 7",
        // A fused chain and an elided tuple: re-optimizing must neither
        // extend the chain nor disturb the member list.
        "f(x) mul(add(incr(x), 1), 2)\nmain() f(5)",
        "g(x) let <a, b> = <incr(x), 7> in add(a, b)\nmain() g(3)"}) {
    auto [program, first] = graph_optimized(source);
    const std::string before = dump_program(program);
    GraphOptStats again = optimize_graphs(program, registry());
    EXPECT_EQ(again.total(), 0u) << source;
    EXPECT_EQ(dump_program(program), before) << source;
  }
}

TEST(GraphOpt, PrunesDeadCapturesOfAnonymousTemplates) {
  // f's capture c feeds only drop()'s dead second parameter, so the
  // capture, its argument edges, and the add(1, 2) chain all go.
  auto [program, stats] = graph_optimized(R"(
drop(a, b) a
main()
  let c = add(1, 2)
      f(x) drop(x, c)
  in add(f(3), f(4))
)");
  EXPECT_GT(stats.dead_params_pruned, 0u);
  EXPECT_EQ(validate_graph(program), "");
  Runtime runtime(registry(), {.num_workers = 1});
  EXPECT_EQ(runtime.run(program).as_int(), 7);
}

class GraphOptProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphOptProperty, PreservesValuesOnGeneratedPrograms) {
  dcc::GenParams params;
  params.num_functions = 12;
  params.body_size = 25;
  params.seed = GetParam();
  const std::string source = dcc::generate_program(params);

  CompileOptions no_opt;
  no_opt.optimize = false;
  CompiledProgram plain = compile_or_throw(source, registry(), no_opt);

  CompiledProgram pruned = compile_or_throw(source, registry(), no_opt);
  optimize_graphs(pruned, registry());
  EXPECT_EQ(validate_graph(pruned), "") << "seed " << GetParam();
  EXPECT_LE(pruned.total_nodes(), plain.total_nodes());

  Runtime runtime(registry(), {.num_workers = 2});
  EXPECT_EQ(runtime.run(plain).as_int(), runtime.run(pruned).as_int())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphOptProperty,
                         ::testing::Values(41, 42, 43, 44, 45, 46, 47, 48, 49, 50));

}  // namespace
}  // namespace delirium
