// Coverage of every built-in operator, both at run time and through the
// constant folder (they must agree).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace delirium {
namespace {

using testing::eval;
using testing::eval_int;

/// Evaluate `expr` with and without optimization; both must agree (the
/// fold path vs the runtime path).
void check_int(const std::string& expr, int64_t expected) {
  auto reg = testing::builtin_registry();
  CompileOptions no_opt;
  no_opt.optimize = false;
  const std::string source = "main() " + expr;
  Runtime runtime(*reg, {.num_workers = 1});
  EXPECT_EQ(runtime.run(compile_or_throw(source, *reg, no_opt)).as_int(), expected)
      << expr << " (runtime)";
  EXPECT_EQ(runtime.run(compile_or_throw(source, *reg)).as_int(), expected)
      << expr << " (folded)";
}

void check_float(const std::string& expr, double expected) {
  auto reg = testing::builtin_registry();
  CompileOptions no_opt;
  no_opt.optimize = false;
  const std::string source = "main() " + expr;
  Runtime runtime(*reg, {.num_workers = 1});
  EXPECT_DOUBLE_EQ(runtime.run(compile_or_throw(source, *reg, no_opt)).as_float(), expected)
      << expr;
  EXPECT_DOUBLE_EQ(runtime.run(compile_or_throw(source, *reg)).as_float(), expected) << expr;
}

TEST(Builtins, IncrementsAndArithmetic) {
  check_int("incr(41)", 42);
  check_int("decr(43)", 42);
  check_int("add(40, 2)", 42);
  check_int("sub(50, 8)", 42);
  check_int("mul(6, 7)", 42);
  check_int("div(85, 2)", 42);
  check_int("mod(142, 50)", 42);
  check_int("neg(-42)", 42);
  check_int("abs(-42)", 42);
  check_int("min(42, 99)", 42);
  check_int("max(42, -1)", 42);
}

TEST(Builtins, MixedIntFloatPromotes) {
  check_float("add(1, 0.5)", 1.5);
  check_float("mul(2.5, 2)", 5.0);
  check_float("div(5, 2.0)", 2.5);
  check_float("min(1.5, 2)", 1.5);
}

TEST(Builtins, FloatFunctions) {
  check_float("sqrt(6.25)", 2.5);
  check_int("floor(2.9)", 2);
  check_int("ceil(2.1)", 3);
  check_int("floor(-2.1)", -3);
}

TEST(Builtins, Comparisons) {
  check_int("is_equal(3, 3)", 1);
  check_int("is_equal(3, 4)", 0);
  check_int("is_equal(\"a\", \"a\")", 1);
  check_int("is_equal(NULL, NULL)", 1);
  check_int("is_equal(1, \"1\")", 0);
  check_int("is_not_equal(3, 4)", 1);
  check_int("less_than(1, 2)", 1);
  check_int("less_than(2, 1)", 0);
  check_int("less_equal(2, 2)", 1);
  check_int("greater_than(3, 2)", 1);
  check_int("greater_equal(2, 3)", 0);
  check_int("is_equal(1, 1.0)", 1);  // numeric cross-type
}

TEST(Builtins, Logic) {
  check_int("not(0)", 1);
  check_int("not(3)", 0);
  check_int("not(NULL)", 1);
  check_int("and(1, 1)", 1);
  check_int("and(1, 0)", 0);
  check_int("or(0, 2)", 1);
  check_int("or(0, NULL)", 0);
}

TEST(Builtins, Strings) {
  EXPECT_EQ(eval("main() concat(\"foo\", \"bar\")").as_string(), "foobar");
  check_int("str_len(\"hello\")", 5);
  EXPECT_EQ(eval("main() to_string(42)").as_string(), "42");
  EXPECT_EQ(eval("main() to_string(NULL)").as_string(), "NULL");
}

TEST(Builtins, Conversions) {
  check_int("to_int(\"42\")", 42);
  check_int("to_int(2.9)", 2);
  check_float("to_float(\"2.5\")", 2.5);
  check_float("to_float(7)", 7.0);
}

TEST(Builtins, Misc) {
  check_int("identity(42)", 42);
  check_int("is_null(NULL)", 1);
  check_int("is_null(0)", 0);
}

TEST(Builtins, PrintPassesValueThrough) {
  ::testing::internal::CaptureStdout();
  EXPECT_EQ(eval_int("main() add(print(40), 2)"), 42);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("40"), std::string::npos);
}

TEST(Builtins, PrintIsNotFoldedAway) {
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw("main() let x = print(7) in 1", *reg);
  Runtime runtime(*reg, {.num_workers = 1});
  ::testing::internal::CaptureStdout();
  runtime.run(program);
  EXPECT_NE(::testing::internal::GetCapturedStdout().find("7"), std::string::npos);
}

TEST(Builtins, ErrorsAtRuntime) {
  EXPECT_THROW(eval("main() div(1, 0)"), RuntimeError);
  EXPECT_THROW(eval("main() mod(1, 0)"), RuntimeError);
  EXPECT_THROW(eval("main() incr(\"x\")"), RuntimeError);
  EXPECT_THROW(eval("main() mod(1.5, 2)"), RuntimeError);  // mod is integral
}

TEST(Builtins, FoldersNeverHideErrors) {
  // Folding must leave error-producing expressions for run time, even
  // inside otherwise-foldable contexts.
  auto reg = testing::builtin_registry();
  CompiledProgram program = compile_or_throw("main() add(1, div(2, sub(1, 1)))", *reg);
  Runtime runtime(*reg, {.num_workers = 1});
  EXPECT_THROW(runtime.run(program), RuntimeError);
}

}  // namespace
}  // namespace delirium
