# Empty compiler generated dependencies file for graph_opt_test.
# This may be replaced when dependencies are built.
