file(REMOVE_RECURSE
  "CMakeFiles/graph_opt_test.dir/graph_opt_test.cpp.o"
  "CMakeFiles/graph_opt_test.dir/graph_opt_test.cpp.o.d"
  "graph_opt_test"
  "graph_opt_test.pdb"
  "graph_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
