file(REMOVE_RECURSE
  "CMakeFiles/tree_walk_test.dir/tree_walk_test.cpp.o"
  "CMakeFiles/tree_walk_test.dir/tree_walk_test.cpp.o.d"
  "tree_walk_test"
  "tree_walk_test.pdb"
  "tree_walk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_walk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
