# Empty compiler generated dependencies file for tree_walk_test.
# This may be replaced when dependencies are built.
