file(REMOVE_RECURSE
  "CMakeFiles/retina_test.dir/retina_test.cpp.o"
  "CMakeFiles/retina_test.dir/retina_test.cpp.o.d"
  "retina_test"
  "retina_test.pdb"
  "retina_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
