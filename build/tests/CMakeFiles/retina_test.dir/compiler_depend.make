# Empty compiler generated dependencies file for retina_test.
# This may be replaced when dependencies are built.
