file(REMOVE_RECURSE
  "CMakeFiles/runtime_core_test.dir/runtime_core_test.cpp.o"
  "CMakeFiles/runtime_core_test.dir/runtime_core_test.cpp.o.d"
  "runtime_core_test"
  "runtime_core_test.pdb"
  "runtime_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
