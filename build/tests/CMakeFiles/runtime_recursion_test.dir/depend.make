# Empty dependencies file for runtime_recursion_test.
# This may be replaced when dependencies are built.
