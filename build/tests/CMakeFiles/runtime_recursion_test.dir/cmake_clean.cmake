file(REMOVE_RECURSE
  "CMakeFiles/runtime_recursion_test.dir/runtime_recursion_test.cpp.o"
  "CMakeFiles/runtime_recursion_test.dir/runtime_recursion_test.cpp.o.d"
  "runtime_recursion_test"
  "runtime_recursion_test.pdb"
  "runtime_recursion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_recursion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
