file(REMOVE_RECURSE
  "CMakeFiles/stdlib_test.dir/stdlib_test.cpp.o"
  "CMakeFiles/stdlib_test.dir/stdlib_test.cpp.o.d"
  "stdlib_test"
  "stdlib_test.pdb"
  "stdlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stdlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
