file(REMOVE_RECURSE
  "CMakeFiles/ray_test.dir/ray_test.cpp.o"
  "CMakeFiles/ray_test.dir/ray_test.cpp.o.d"
  "ray_test"
  "ray_test.pdb"
  "ray_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
