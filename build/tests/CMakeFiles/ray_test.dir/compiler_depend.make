# Empty compiler generated dependencies file for ray_test.
# This may be replaced when dependencies are built.
