# Empty dependencies file for parmap_test.
# This may be replaced when dependencies are built.
