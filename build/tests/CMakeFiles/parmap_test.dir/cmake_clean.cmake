file(REMOVE_RECURSE
  "CMakeFiles/parmap_test.dir/parmap_test.cpp.o"
  "CMakeFiles/parmap_test.dir/parmap_test.cpp.o.d"
  "parmap_test"
  "parmap_test.pdb"
  "parmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
