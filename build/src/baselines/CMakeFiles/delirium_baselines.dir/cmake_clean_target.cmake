file(REMOVE_RECURSE
  "libdelirium_baselines.a"
)
