# Empty dependencies file for delirium_baselines.
# This may be replaced when dependencies are built.
