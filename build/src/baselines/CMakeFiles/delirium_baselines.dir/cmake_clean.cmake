file(REMOVE_RECURSE
  "CMakeFiles/delirium_baselines.dir/baseline_apps.cpp.o"
  "CMakeFiles/delirium_baselines.dir/baseline_apps.cpp.o.d"
  "CMakeFiles/delirium_baselines.dir/fork_join.cpp.o"
  "CMakeFiles/delirium_baselines.dir/fork_join.cpp.o.d"
  "CMakeFiles/delirium_baselines.dir/replicated_worker.cpp.o"
  "CMakeFiles/delirium_baselines.dir/replicated_worker.cpp.o.d"
  "CMakeFiles/delirium_baselines.dir/tuple_space.cpp.o"
  "CMakeFiles/delirium_baselines.dir/tuple_space.cpp.o.d"
  "libdelirium_baselines.a"
  "libdelirium_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
