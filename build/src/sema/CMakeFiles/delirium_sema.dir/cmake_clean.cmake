file(REMOVE_RECURSE
  "CMakeFiles/delirium_sema.dir/env_analysis.cpp.o"
  "CMakeFiles/delirium_sema.dir/env_analysis.cpp.o.d"
  "libdelirium_sema.a"
  "libdelirium_sema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
