file(REMOVE_RECURSE
  "libdelirium_sema.a"
)
