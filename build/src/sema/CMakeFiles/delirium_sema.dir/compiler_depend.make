# Empty compiler generated dependencies file for delirium_sema.
# This may be replaced when dependencies are built.
