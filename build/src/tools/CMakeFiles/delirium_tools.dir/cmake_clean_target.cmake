file(REMOVE_RECURSE
  "libdelirium_tools.a"
)
