# Empty dependencies file for delirium_tools.
# This may be replaced when dependencies are built.
