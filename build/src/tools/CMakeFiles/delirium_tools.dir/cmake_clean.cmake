file(REMOVE_RECURSE
  "CMakeFiles/delirium_tools.dir/report.cpp.o"
  "CMakeFiles/delirium_tools.dir/report.cpp.o.d"
  "CMakeFiles/delirium_tools.dir/trace.cpp.o"
  "CMakeFiles/delirium_tools.dir/trace.cpp.o.d"
  "libdelirium_tools.a"
  "libdelirium_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
