
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dot.cpp" "src/graph/CMakeFiles/delirium_graph.dir/dot.cpp.o" "gcc" "src/graph/CMakeFiles/delirium_graph.dir/dot.cpp.o.d"
  "/root/repo/src/graph/graph_builder.cpp" "src/graph/CMakeFiles/delirium_graph.dir/graph_builder.cpp.o" "gcc" "src/graph/CMakeFiles/delirium_graph.dir/graph_builder.cpp.o.d"
  "/root/repo/src/graph/graph_opt.cpp" "src/graph/CMakeFiles/delirium_graph.dir/graph_opt.cpp.o" "gcc" "src/graph/CMakeFiles/delirium_graph.dir/graph_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sema/CMakeFiles/delirium_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/delirium_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/delirium_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
