# Empty compiler generated dependencies file for delirium_graph.
# This may be replaced when dependencies are built.
