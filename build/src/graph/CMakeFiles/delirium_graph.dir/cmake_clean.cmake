file(REMOVE_RECURSE
  "CMakeFiles/delirium_graph.dir/dot.cpp.o"
  "CMakeFiles/delirium_graph.dir/dot.cpp.o.d"
  "CMakeFiles/delirium_graph.dir/graph_builder.cpp.o"
  "CMakeFiles/delirium_graph.dir/graph_builder.cpp.o.d"
  "CMakeFiles/delirium_graph.dir/graph_opt.cpp.o"
  "CMakeFiles/delirium_graph.dir/graph_opt.cpp.o.d"
  "libdelirium_graph.a"
  "libdelirium_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
