file(REMOVE_RECURSE
  "libdelirium_graph.a"
)
