file(REMOVE_RECURSE
  "libdelirium_dcc.a"
)
