file(REMOVE_RECURSE
  "CMakeFiles/delirium_dcc.dir/dcc.cpp.o"
  "CMakeFiles/delirium_dcc.dir/dcc.cpp.o.d"
  "CMakeFiles/delirium_dcc.dir/program_gen.cpp.o"
  "CMakeFiles/delirium_dcc.dir/program_gen.cpp.o.d"
  "CMakeFiles/delirium_dcc.dir/tree_walk.cpp.o"
  "CMakeFiles/delirium_dcc.dir/tree_walk.cpp.o.d"
  "libdelirium_dcc.a"
  "libdelirium_dcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_dcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
