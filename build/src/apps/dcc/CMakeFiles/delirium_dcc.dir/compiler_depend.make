# Empty compiler generated dependencies file for delirium_dcc.
# This may be replaced when dependencies are built.
