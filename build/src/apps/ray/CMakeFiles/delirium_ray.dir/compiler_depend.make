# Empty compiler generated dependencies file for delirium_ray.
# This may be replaced when dependencies are built.
