file(REMOVE_RECURSE
  "CMakeFiles/delirium_ray.dir/ray.cpp.o"
  "CMakeFiles/delirium_ray.dir/ray.cpp.o.d"
  "libdelirium_ray.a"
  "libdelirium_ray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_ray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
