file(REMOVE_RECURSE
  "libdelirium_ray.a"
)
