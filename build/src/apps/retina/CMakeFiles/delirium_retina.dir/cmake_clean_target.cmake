file(REMOVE_RECURSE
  "libdelirium_retina.a"
)
