# Empty compiler generated dependencies file for delirium_retina.
# This may be replaced when dependencies are built.
