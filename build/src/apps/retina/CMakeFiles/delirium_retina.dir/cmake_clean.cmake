file(REMOVE_RECURSE
  "CMakeFiles/delirium_retina.dir/retina_model.cpp.o"
  "CMakeFiles/delirium_retina.dir/retina_model.cpp.o.d"
  "CMakeFiles/delirium_retina.dir/retina_ops.cpp.o"
  "CMakeFiles/delirium_retina.dir/retina_ops.cpp.o.d"
  "libdelirium_retina.a"
  "libdelirium_retina.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_retina.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
