file(REMOVE_RECURSE
  "CMakeFiles/delirium_grid.dir/grid.cpp.o"
  "CMakeFiles/delirium_grid.dir/grid.cpp.o.d"
  "libdelirium_grid.a"
  "libdelirium_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
