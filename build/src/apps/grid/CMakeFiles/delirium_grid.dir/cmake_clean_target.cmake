file(REMOVE_RECURSE
  "libdelirium_grid.a"
)
