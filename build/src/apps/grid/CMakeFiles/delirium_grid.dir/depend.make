# Empty dependencies file for delirium_grid.
# This may be replaced when dependencies are built.
