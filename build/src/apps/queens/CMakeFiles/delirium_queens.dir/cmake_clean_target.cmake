file(REMOVE_RECURSE
  "libdelirium_queens.a"
)
