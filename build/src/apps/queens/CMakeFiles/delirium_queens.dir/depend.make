# Empty dependencies file for delirium_queens.
# This may be replaced when dependencies are built.
