file(REMOVE_RECURSE
  "CMakeFiles/delirium_queens.dir/queens.cpp.o"
  "CMakeFiles/delirium_queens.dir/queens.cpp.o.d"
  "libdelirium_queens.a"
  "libdelirium_queens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_queens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
