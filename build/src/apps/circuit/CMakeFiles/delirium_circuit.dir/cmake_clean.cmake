file(REMOVE_RECURSE
  "CMakeFiles/delirium_circuit.dir/circuit.cpp.o"
  "CMakeFiles/delirium_circuit.dir/circuit.cpp.o.d"
  "libdelirium_circuit.a"
  "libdelirium_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
