file(REMOVE_RECURSE
  "libdelirium_circuit.a"
)
