# Empty dependencies file for delirium_circuit.
# This may be replaced when dependencies are built.
