file(REMOVE_RECURSE
  "CMakeFiles/delirium_opt.dir/optimizer.cpp.o"
  "CMakeFiles/delirium_opt.dir/optimizer.cpp.o.d"
  "libdelirium_opt.a"
  "libdelirium_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
