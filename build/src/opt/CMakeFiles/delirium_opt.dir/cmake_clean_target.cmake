file(REMOVE_RECURSE
  "libdelirium_opt.a"
)
