# Empty compiler generated dependencies file for delirium_opt.
# This may be replaced when dependencies are built.
