file(REMOVE_RECURSE
  "CMakeFiles/delirium_core.dir/compiler.cpp.o"
  "CMakeFiles/delirium_core.dir/compiler.cpp.o.d"
  "libdelirium_core.a"
  "libdelirium_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
