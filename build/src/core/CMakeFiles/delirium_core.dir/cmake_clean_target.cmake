file(REMOVE_RECURSE
  "libdelirium_core.a"
)
