# Empty dependencies file for delirium_core.
# This may be replaced when dependencies are built.
