file(REMOVE_RECURSE
  "CMakeFiles/delirium_lang.dir/ast.cpp.o"
  "CMakeFiles/delirium_lang.dir/ast.cpp.o.d"
  "CMakeFiles/delirium_lang.dir/lexer.cpp.o"
  "CMakeFiles/delirium_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/delirium_lang.dir/macro.cpp.o"
  "CMakeFiles/delirium_lang.dir/macro.cpp.o.d"
  "CMakeFiles/delirium_lang.dir/parser.cpp.o"
  "CMakeFiles/delirium_lang.dir/parser.cpp.o.d"
  "CMakeFiles/delirium_lang.dir/pretty.cpp.o"
  "CMakeFiles/delirium_lang.dir/pretty.cpp.o.d"
  "libdelirium_lang.a"
  "libdelirium_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
