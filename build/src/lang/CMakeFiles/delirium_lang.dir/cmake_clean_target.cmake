file(REMOVE_RECURSE
  "libdelirium_lang.a"
)
