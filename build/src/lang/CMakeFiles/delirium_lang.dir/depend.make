# Empty dependencies file for delirium_lang.
# This may be replaced when dependencies are built.
