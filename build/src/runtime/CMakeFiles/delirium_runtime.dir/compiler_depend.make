# Empty compiler generated dependencies file for delirium_runtime.
# This may be replaced when dependencies are built.
