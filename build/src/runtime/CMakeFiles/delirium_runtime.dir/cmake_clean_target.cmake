file(REMOVE_RECURSE
  "libdelirium_runtime.a"
)
