
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/builtins.cpp" "src/runtime/CMakeFiles/delirium_runtime.dir/builtins.cpp.o" "gcc" "src/runtime/CMakeFiles/delirium_runtime.dir/builtins.cpp.o.d"
  "/root/repo/src/runtime/registry.cpp" "src/runtime/CMakeFiles/delirium_runtime.dir/registry.cpp.o" "gcc" "src/runtime/CMakeFiles/delirium_runtime.dir/registry.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/delirium_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/delirium_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/sim.cpp" "src/runtime/CMakeFiles/delirium_runtime.dir/sim.cpp.o" "gcc" "src/runtime/CMakeFiles/delirium_runtime.dir/sim.cpp.o.d"
  "/root/repo/src/runtime/value.cpp" "src/runtime/CMakeFiles/delirium_runtime.dir/value.cpp.o" "gcc" "src/runtime/CMakeFiles/delirium_runtime.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/delirium_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/delirium_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/delirium_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/delirium_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
