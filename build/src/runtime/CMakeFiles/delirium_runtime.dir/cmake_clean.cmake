file(REMOVE_RECURSE
  "CMakeFiles/delirium_runtime.dir/builtins.cpp.o"
  "CMakeFiles/delirium_runtime.dir/builtins.cpp.o.d"
  "CMakeFiles/delirium_runtime.dir/registry.cpp.o"
  "CMakeFiles/delirium_runtime.dir/registry.cpp.o.d"
  "CMakeFiles/delirium_runtime.dir/runtime.cpp.o"
  "CMakeFiles/delirium_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/delirium_runtime.dir/sim.cpp.o"
  "CMakeFiles/delirium_runtime.dir/sim.cpp.o.d"
  "CMakeFiles/delirium_runtime.dir/value.cpp.o"
  "CMakeFiles/delirium_runtime.dir/value.cpp.o.d"
  "libdelirium_runtime.a"
  "libdelirium_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
