file(REMOVE_RECURSE
  "CMakeFiles/delirium_support.dir/diagnostics.cpp.o"
  "CMakeFiles/delirium_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/delirium_support.dir/source.cpp.o"
  "CMakeFiles/delirium_support.dir/source.cpp.o.d"
  "libdelirium_support.a"
  "libdelirium_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delirium_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
