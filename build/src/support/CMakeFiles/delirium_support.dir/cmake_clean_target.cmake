file(REMOVE_RECURSE
  "libdelirium_support.a"
)
