# Empty dependencies file for delirium_support.
# This may be replaced when dependencies are built.
