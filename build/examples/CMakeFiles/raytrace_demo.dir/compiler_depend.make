# Empty compiler generated dependencies file for raytrace_demo.
# This may be replaced when dependencies are built.
