file(REMOVE_RECURSE
  "CMakeFiles/queens_demo.dir/queens_demo.cpp.o"
  "CMakeFiles/queens_demo.dir/queens_demo.cpp.o.d"
  "queens_demo"
  "queens_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queens_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
