# Empty compiler generated dependencies file for queens_demo.
# This may be replaced when dependencies are built.
