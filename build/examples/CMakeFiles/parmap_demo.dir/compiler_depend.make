# Empty compiler generated dependencies file for parmap_demo.
# This may be replaced when dependencies are built.
