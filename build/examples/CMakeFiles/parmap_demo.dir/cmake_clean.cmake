file(REMOVE_RECURSE
  "CMakeFiles/parmap_demo.dir/parmap_demo.cpp.o"
  "CMakeFiles/parmap_demo.dir/parmap_demo.cpp.o.d"
  "parmap_demo"
  "parmap_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
