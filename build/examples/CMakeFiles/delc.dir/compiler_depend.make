# Empty compiler generated dependencies file for delc.
# This may be replaced when dependencies are built.
