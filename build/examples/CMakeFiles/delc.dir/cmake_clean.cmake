file(REMOVE_RECURSE
  "CMakeFiles/delc.dir/delc.cpp.o"
  "CMakeFiles/delc.dir/delc.cpp.o.d"
  "delc"
  "delc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
