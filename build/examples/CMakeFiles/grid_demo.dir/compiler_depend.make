# Empty compiler generated dependencies file for grid_demo.
# This may be replaced when dependencies are built.
