file(REMOVE_RECURSE
  "CMakeFiles/retina_demo.dir/retina_demo.cpp.o"
  "CMakeFiles/retina_demo.dir/retina_demo.cpp.o.d"
  "retina_demo"
  "retina_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retina_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
