# Empty dependencies file for retina_demo.
# This may be replaced when dependencies are built.
