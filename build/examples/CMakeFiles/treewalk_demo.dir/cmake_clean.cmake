file(REMOVE_RECURSE
  "CMakeFiles/treewalk_demo.dir/treewalk_demo.cpp.o"
  "CMakeFiles/treewalk_demo.dir/treewalk_demo.cpp.o.d"
  "treewalk_demo"
  "treewalk_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
