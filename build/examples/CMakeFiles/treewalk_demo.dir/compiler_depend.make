# Empty compiler generated dependencies file for treewalk_demo.
# This may be replaced when dependencies are built.
