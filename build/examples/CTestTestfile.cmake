# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(delc_runs_fib "/root/repo/build/examples/delc" "--run" "--timings" "/root/repo/examples/programs/fib.dlr")
set_tests_properties(delc_runs_fib PROPERTIES  PASS_REGULAR_EXPRESSION "result: 2584" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(delc_sim_queens "/root/repo/build/examples/delc" "--sim" "3" "/root/repo/examples/programs/queens.dlr")
set_tests_properties(delc_sim_queens PROPERTIES  PASS_REGULAR_EXPRESSION "result: 4" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(delc_dumps_dot "/root/repo/build/examples/delc" "--dump-dot" "/root/repo/examples/programs/loops.dlr")
set_tests_properties(delc_dumps_dot PROPERTIES  PASS_REGULAR_EXPRESSION "digraph delirium" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(delc_rejects_bad_input "/root/repo/build/examples/delc" "--run" "/root/repo/DESIGN.md")
set_tests_properties(delc_rejects_bad_input PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
