file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_compiler.dir/bench_table1_compiler.cpp.o"
  "CMakeFiles/bench_table1_compiler.dir/bench_table1_compiler.cpp.o.d"
  "bench_table1_compiler"
  "bench_table1_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
