
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro.cpp" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o" "gcc" "bench/CMakeFiles/bench_micro.dir/bench_micro.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/dcc/CMakeFiles/delirium_dcc.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/delirium_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/delirium_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/delirium_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/delirium_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/delirium_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sema/CMakeFiles/delirium_sema.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/delirium_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/delirium_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
