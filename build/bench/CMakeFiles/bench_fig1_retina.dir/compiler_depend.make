# Empty compiler generated dependencies file for bench_fig1_retina.
# This may be replaced when dependencies are built.
