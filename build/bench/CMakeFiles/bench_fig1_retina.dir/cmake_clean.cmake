file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_retina.dir/bench_fig1_retina.cpp.o"
  "CMakeFiles/bench_fig1_retina.dir/bench_fig1_retina.cpp.o.d"
  "bench_fig1_retina"
  "bench_fig1_retina.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_retina.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
