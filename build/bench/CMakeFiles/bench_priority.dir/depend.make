# Empty dependencies file for bench_priority.
# This may be replaced when dependencies are built.
